//! Incremental corridor connectivity for the iterative-deletion router.
//!
//! The ID main loop asks one question per candidate deletion: *do the two
//! terminals stay connected if this edge dies?* The seed kernel answered
//! with a full BFS over corridor adjacency per query
//! ([`Corridor::connected_without`]), which made connectivity the dominant
//! Phase I cost. This module replaces the per-query BFS with a cached
//! bridge analysis so that almost every query is O(1), and scopes the
//! remaining passes to the terminals' connected component:
//!
//! * One **Tarjan low-link DFS** over the alive corridor graph finds every
//!   bridge in O(V+E); a BFS from the same pass extracts a short witness
//!   path `P` between the terminals. An edge disconnects the terminals iff
//!   it is a bridge **and** lies on `P` (a separating edge lies on every
//!   terminal path, and a bridge on one simple terminal path separates).
//! * Both traversals walk the corridor's **alive arc lists**
//!   ([`Corridor::first_arc`]/[`Corridor::next_arc`]), which
//!   [`Corridor::kill`] unlinks in O(1). Starting from a terminal they
//!   visit exactly the terminal component's alive edges — a recompute is
//!   **component-scoped**, O(V_c + E_c), never the PR-2 corridor-scoped
//!   O(V + E_total) rebuild that iterated every edge (dead ones included)
//!   to copy adjacency into scratch.
//! * The analysis is stamped with the corridor's **revision** (bumped by
//!   every [`Corridor::kill`]). While the revision matches, a query is a
//!   plain double array lookup.
//! * After a kill the cache goes *stale*, but it is **not** recomputed
//!   eagerly — three monotonicity facts answer almost everything in O(1):
//!   deletion never reconnects, so a cached "already disconnected" verdict
//!   is final; a separating bridge stays separating while deletions
//!   continue, so `sep` verdicts persist across revisions; and while the
//!   witness path is intact (no kill touched it — see
//!   [`BridgeCache::note_kill`]) any query about an off-path edge is
//!   answered `true`, because `P` itself avoids that edge.
//! * Every other stale query — the witness path **broke** (a kill hit
//!   it), or the query is about a path edge the monotone facts cannot
//!   classify — is settled by a **localized repair**
//!   (`BridgeCache::resolve_stale`): one component-scoped BFS around the
//!   queried edge either installs a fresh witness path (re-arming the
//!   O(1) shortcut) or, by failing while a live path exists, proves the
//!   edge separating. Repairs are *batched* by construction — a burst of
//!   deletions along one route invalidates the path once, and the single
//!   BFS at the next query heals every break at once, instead of the
//!   PR-2 behaviour of one full Tarjan recompute per path hit.
//! * The full Tarjan pass therefore runs **once per corridor** (the first
//!   query, seeding the monotone bridge set so every bridge that exists
//!   up front yields O(1) `sep` verdicts) and again only if a caller
//!   violates the kill-notification contract below. Its witness path is
//!   routed **around** the queried edge when possible so the kill that
//!   typically follows a `true` answer leaves the new path intact.
//!
//! The per-call DFS/BFS state lives in [`ConnectivityScratch`], shared by
//! every corridor of an ID run and epoch-stamped exactly like
//! [`super::SearchScratch`] and [`super::CorridorScratch`]: starting a
//! recompute is an O(1) counter bump, never an O(regions) clear.
//!
//! # Invalidation contract
//!
//! Callers that kill corridor edges directly should pair every effective
//! [`Corridor::kill`] with one [`BridgeCache::note_kill`] on the
//! corridor's cache — that is how the intact-path shortcut learns about
//! witness-path deaths. The pairing is enforced structurally: the
//! shortcut *and* the repair cross-check the corridor's revision counter
//! against the number of reported kills, so an unpaired kill degrades to a
//! recompute instead of a stale answer (and debug builds verify the
//! witness path on every shortcut). See
//! `crates/core/src/router/README.md` for the full contract.

use super::corridor::Corridor;

/// Sentinel for "no parent edge" (DFS root) / "no parent region".
const NONE: u32 = u32::MAX;

/// Counters describing how the incremental connectivity behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectivityCounters {
    /// Queries answered from a revision-fresh bridge set (O(1)).
    pub fresh_hits: usize,
    /// Stale-cache queries answered through the intact witness path (O(1)).
    pub shortcut_hits: usize,
    /// Localized stale-query resolutions ([`BridgeCache`]'s
    /// `resolve_stale`): a component-scoped BFS repaired the witness path
    /// (healing a whole burst of breaks at once) or proved the queried
    /// edge separating, without recomputing the bridge analysis.
    pub repairs: usize,
    /// Full component-scoped Tarjan/BFS bridge recomputes.
    pub recomputes: usize,
}

/// Reusable DFS/BFS buffers for the bridge analysis.
///
/// One scratch serves every corridor of a routing run. All arrays are
/// epoch-stamped: an entry is live only when its stamp equals the current
/// epoch, so starting a recompute costs O(1) regardless of how large the
/// previous corridor was. Adjacency is *not* copied here — traversals walk
/// the corridor's own alive arc lists, so their cost is bounded by the
/// traversed component.
#[derive(Debug, Default)]
pub struct ConnectivityScratch {
    epoch: u32,
    /// DFS discovery stamp / order / low-link per region.
    visit: Vec<u32>,
    tin: Vec<u32>,
    low: Vec<u32>,
    /// DFS frames: (region, next alive arc, edge to parent).
    stack: Vec<(u16, i32, u32)>,
    /// Bridge flags per edge, valid for the current recompute only.
    bridge: Vec<bool>,
    /// Edges flagged in `bridge` (bounds the post-recompute clear).
    bridge_set: Vec<u32>,
    /// BFS visitation stamp and parent edge per region. The BFS runs up to
    /// twice per recompute (once avoiding the queried edge, once without
    /// the restriction), so it carries its own epoch.
    bfs_epoch: u32,
    bfs_visit: Vec<u32>,
    bfs_parent: Vec<u32>,
    bfs_queue: Vec<u16>,
    /// Behaviour counters accumulated across queries (reset by the caller).
    pub counters: ConnectivityCounters,
}

impl ConnectivityScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        ConnectivityScratch::default()
    }

    /// Grows the region/edge-indexed arrays; never shrinks them.
    fn ensure_capacity(&mut self, regions: usize, edges: usize) {
        if self.visit.len() < regions {
            self.visit.resize(regions, 0);
            self.tin.resize(regions, 0);
            self.low.resize(regions, 0);
            self.bfs_visit.resize(regions, 0);
            self.bfs_parent.resize(regions, NONE);
        }
        if self.bridge.len() < edges {
            self.bridge.resize(edges, false);
        }
    }

    fn prepare(&mut self, regions: usize, edges: usize) {
        self.ensure_capacity(regions, edges);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visit.fill(0);
            self.epoch = 1;
        }
        self.stack.clear();
        self.bfs_queue.clear();
        while let Some(e) = self.bridge_set.pop() {
            self.bridge[e as usize] = false;
        }
    }

    /// Iterative Tarjan low-link DFS from `root` over the corridor's alive
    /// arc lists. Marks every bridge of `root`'s component in
    /// `self.bridge`; regions outside the component are never touched.
    fn dfs_bridges(&mut self, corridor: &Corridor, root: u16) {
        let mut timer = 0u32;
        self.visit[root as usize] = self.epoch;
        self.tin[root as usize] = timer;
        self.low[root as usize] = timer;
        timer += 1;
        self.stack.push((root, corridor.first_arc(root), NONE));
        while let Some(&(node, arc, parent_edge)) = self.stack.last() {
            if arc < 0 {
                self.stack.pop();
                if let Some(&(parent, _, _)) = self.stack.last() {
                    let (ni, pi) = (node as usize, parent as usize);
                    if self.low[ni] < self.low[pi] {
                        self.low[pi] = self.low[ni];
                    }
                    if self.low[ni] > self.tin[pi] {
                        self.bridge[parent_edge as usize] = true;
                        self.bridge_set.push(parent_edge);
                    }
                }
                continue;
            }
            let (to, eid) = (corridor.arc_to(arc), corridor.arc_edge(arc) as u32);
            // invariant: the enclosing loop only runs while the stack is
            // non-empty; this frame was peeked at the top of the iteration.
            self.stack.last_mut().expect("frame exists").1 = corridor.next_arc(arc);
            if eid == parent_edge {
                continue;
            }
            let (ni, ti) = (node as usize, to as usize);
            if self.visit[ti] == self.epoch {
                if self.tin[ti] < self.low[ni] {
                    self.low[ni] = self.tin[ti];
                }
            } else {
                self.visit[ti] = self.epoch;
                self.tin[ti] = timer;
                self.low[ti] = timer;
                timer += 1;
                self.stack.push((to, corridor.first_arc(to), eid));
            }
        }
    }

    /// BFS from `from` to `to` over the alive arc lists, skipping edge
    /// `avoid` (pass [`NONE`] for no restriction); returns whether `to`
    /// was reached and leaves parent edges in `self.bfs_parent` for path
    /// extraction. Cost is bounded by `from`'s component.
    fn bfs_path(&mut self, corridor: &Corridor, from: u16, to: u16, avoid: u32) -> bool {
        self.bfs_epoch = self.bfs_epoch.wrapping_add(1);
        if self.bfs_epoch == 0 {
            self.bfs_visit.fill(0);
            self.bfs_epoch = 1;
        }
        self.bfs_queue.clear();
        self.bfs_visit[from as usize] = self.bfs_epoch;
        self.bfs_parent[from as usize] = NONE;
        self.bfs_queue.push(from);
        let mut head = 0;
        while head < self.bfs_queue.len() {
            let r = self.bfs_queue[head];
            head += 1;
            if r == to {
                return true;
            }
            let mut arc = corridor.first_arc(r);
            while arc >= 0 {
                let eid = corridor.arc_edge(arc) as u32;
                let n = corridor.arc_to(arc);
                if eid != avoid && self.bfs_visit[n as usize] != self.bfs_epoch {
                    self.bfs_visit[n as usize] = self.bfs_epoch;
                    self.bfs_parent[n as usize] = eid;
                    self.bfs_queue.push(n);
                }
                arc = corridor.next_arc(arc);
            }
        }
        false
    }
}

/// Per-corridor cached bridge analysis.
///
/// One cache accompanies each [`Corridor`] through an ID run; the heavy
/// per-recompute state lives in the shared [`ConnectivityScratch`].
#[derive(Debug, Default)]
pub struct BridgeCache {
    /// Corridor revision the analysis was computed at.
    revision: u32,
    /// Whether any analysis has been computed yet.
    valid: bool,
    /// Whether the terminals were connected at `revision`.
    connected: bool,
    /// Whether the witness path is known intact (every edge alive).
    path_intact: bool,
    /// Membership of the witness path, per edge (exact for the currently
    /// installed path, which a repair may have refreshed after `revision`).
    on_path: Vec<bool>,
    /// Killing `e` separates the terminals. **Monotone**: once an edge
    /// separates the pair it keeps separating under further deletions, so
    /// entries persist across recomputes and answer stale queries in O(1).
    sep: Vec<bool>,
    /// `e` is a bridge of the corridor graph. **Monotone** like `sep`:
    /// deletion never creates a cycle, so a bridge stays a bridge for as
    /// long as it lives. Merged from every Tarjan pass and combined with
    /// the witness path: a known bridge lying on a path that was fully
    /// alive when installed was separating at that instant, hence (also
    /// monotone) separating forever — an O(1) `false` that needs neither
    /// a BFS nor a fresh bridge analysis.
    bridge: Vec<bool>,
    /// Edges of the witness path (bounds clears of `on_path`).
    path_edges: Vec<u32>,
    /// Kills reported via [`Self::note_kill`] since the last recompute.
    /// The intact-path shortcut and the localized repair also require
    /// `revision + noted_kills == corridor.revision()`, so an unpaired
    /// [`Corridor::kill`] degrades to a recompute instead of a stale
    /// answer — the contract is enforced structurally, not just by the
    /// debug assert.
    noted_kills: u32,
}

impl BridgeCache {
    /// Creates an empty cache; the first query recomputes.
    pub fn new() -> Self {
        BridgeCache::default()
    }

    /// Records that `e` was killed in the corridor this cache mirrors.
    ///
    /// Call it exactly once per effective [`Corridor::kill`]; this is what
    /// keeps the O(1) intact-path shortcut fast (see the module docs). A
    /// missed (or spurious) call is detected through the corridor's
    /// revision counter and costs a recompute, never a wrong answer.
    #[inline]
    pub fn note_kill(&mut self, e: usize) {
        self.noted_kills = self.noted_kills.wrapping_add(1);
        if self.valid && e < self.on_path.len() && self.on_path[e] {
            self.path_intact = false;
        }
    }

    /// Whether the terminals of `corridor` stay connected if edge `e` were
    /// dead — same semantics as the BFS [`Corridor::connected_without`],
    /// including the disconnected-corridor case: once the terminal pair is
    /// disconnected the answer is `false` for every `e`, even when `e` is
    /// the only edge touching some isolated region.
    pub fn connected_without(
        &mut self,
        corridor: &Corridor,
        e: usize,
        scratch: &mut ConnectivityScratch,
    ) -> bool {
        let (t1, t2) = corridor.terminals();
        if t1 == t2 {
            return true;
        }
        if self.valid {
            // Monotone verdicts are good at any revision: a separating
            // edge keeps separating, a disconnected pair stays apart.
            if self.sep[e] {
                scratch.counters.fresh_hits += 1;
                return false;
            }
            if !self.connected {
                scratch.counters.fresh_hits += 1;
                return false;
            }
            if self.revision == corridor.revision() {
                scratch.counters.fresh_hits += 1;
                return true; // connected, and `e` is not separating
            }
            // Stale shortcuts need every kill accounted for: the revision
            // arithmetic rejects them whenever some kill was not reported
            // through `note_kill` (the path might be secretly dead),
            // falling through to a recompute.
            if corridor.revision() == self.revision.wrapping_add(self.noted_kills) {
                // The witness path avoids `e` and every edge on it is
                // still alive, so it proves connectivity without `e` by
                // itself.
                if self.path_intact && !self.on_path[e] {
                    debug_assert!(
                        self.path_edges
                            .iter()
                            .all(|&pe| corridor.is_alive(pe as usize)),
                        "witness path has a dead edge: a kill was not paired with note_kill"
                    );
                    scratch.counters.shortcut_hits += 1;
                    return true;
                }
                return self.resolve_stale(corridor, e, scratch);
            }
        }
        self.recompute(corridor, e, scratch);
        self.connected && !self.sep[e]
    }

    /// Settles a stale query the O(1) shortcuts could not answer — the
    /// witness path broke (possibly in several places, if a burst of
    /// deletions ran along the old route) or the query is about a path
    /// edge — with one component-scoped BFS around `e`, never a full
    /// bridge recompute:
    ///
    /// * BFS reaches the far terminal → that fresh path (which avoids `e`
    ///   and heals every accumulated break at once) proves the verdict
    ///   `true` and re-arms the O(1) shortcut.
    /// * BFS fails but the installed path is intact → the path itself
    ///   proves the terminals connected while the BFS proves no terminal
    ///   path avoids `e`: verdict `false`, `e` is learned separating
    ///   (monotone) without a second pass.
    /// * BFS fails with a broken path → one unrestricted BFS decides
    ///   between "`e` separating" (install the found path, learn `sep`)
    ///   and "pair disconnected" (monotone `false` forever).
    fn resolve_stale(
        &mut self,
        corridor: &Corridor,
        e: usize,
        scratch: &mut ConnectivityScratch,
    ) -> bool {
        let (t1, t2) = corridor.terminals();
        scratch.ensure_capacity(corridor.num_regions(), corridor.num_edges());
        scratch.counters.repairs += 1;
        if scratch.bfs_path(corridor, t1, t2, e as u32) {
            self.install_path(corridor, scratch);
            return true;
        }
        if self.path_intact {
            // Intact path ⇒ connected; failed BFS ⇒ nothing avoids `e`.
            debug_assert!(self.on_path[e], "off-path intact queries hit the shortcut");
            self.sep[e] = true;
            return false;
        }
        if scratch.bfs_path(corridor, t1, t2, NONE) {
            self.install_path(corridor, scratch);
            self.sep[e] = true;
        } else {
            self.connected = false;
            while let Some(pe) = self.path_edges.pop() {
                self.on_path[pe as usize] = false;
            }
            self.path_intact = false;
        }
        false
    }

    /// Installs the BFS parent chain `t1 → t2` from `scratch` as the new
    /// witness path, replacing the previous one. Every path edge that is
    /// a known (monotone) bridge is flagged separating in bulk: the path
    /// is fully alive right now, so each bridge on it separates the
    /// terminals — valid after a fresh Tarjan pass *and* after a repair
    /// whose bridge knowledge is older than the path.
    fn install_path(&mut self, corridor: &Corridor, scratch: &ConnectivityScratch) {
        while let Some(pe) = self.path_edges.pop() {
            self.on_path[pe as usize] = false;
        }
        let (t1, t2) = corridor.terminals();
        let mut r = t2;
        while r != t1 {
            let pe = scratch.bfs_parent[r as usize];
            let (a, b, _) = corridor.edge(pe as usize);
            self.on_path[pe as usize] = true;
            if self.bridge[pe as usize] {
                self.sep[pe as usize] = true;
            }
            self.path_edges.push(pe);
            r = if a == r { b } else { a };
        }
        self.path_intact = true;
    }

    /// One component-scoped O(V_c + E_c) pass: Tarjan bridges of the
    /// terminal component (over the alive arc lists — dead edges and
    /// foreign components are never visited), BFS witness path (routed
    /// around `queried` when possible, so the kill that typically follows
    /// a `true` answer keeps the path intact), separating-edge flags for
    /// every bridge on the path. Runs on the first query of a corridor
    /// (seeding the monotone bridge set) and on the unpaired-kill
    /// contract-violation fallback; every later stale query is settled by
    /// [`Self::resolve_stale`]'s BFS passes instead.
    fn recompute(
        &mut self,
        corridor: &Corridor,
        queried: usize,
        scratch: &mut ConnectivityScratch,
    ) {
        scratch.counters.recomputes += 1;
        let (t1, t2) = corridor.terminals();
        let num_edges = corridor.num_edges();
        scratch.prepare(corridor.num_regions(), num_edges);
        if self.on_path.len() < num_edges {
            self.on_path.resize(num_edges, false);
            self.sep.resize(num_edges, false);
            self.bridge.resize(num_edges, false);
        }
        scratch.dfs_bridges(corridor, t1);
        // Fold the fresh bridges into the monotone set (never cleared:
        // deletion cannot un-bridge an edge).
        for &be in &scratch.bridge_set {
            self.bridge[be as usize] = true;
        }
        self.connected = scratch.visit[t2 as usize] == scratch.epoch;
        if self.connected {
            // Prefer a witness path that avoids the queried edge; fall
            // back to any path when the queried edge is on every one
            // (i.e. it separates the terminals).
            let reached = scratch.bfs_path(corridor, t1, t2, queried as u32)
                || scratch.bfs_path(corridor, t1, t2, NONE);
            debug_assert!(reached, "BFS and DFS must agree on reachability");
            // Walk the BFS parents back from t2: a bridge on this (simple)
            // path separates the terminals; a separating edge must lie on
            // every terminal path, so this path finds them all.
            self.install_path(corridor, scratch);
        } else {
            while let Some(pe) = self.path_edges.pop() {
                self.on_path[pe as usize] = false;
            }
            self.path_intact = false;
        }
        self.revision = corridor.revision();
        self.noted_kills = 0;
        self.valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::region::RegionGrid;
    use gsino_grid::tech::Technology;

    fn grid() -> RegionGrid {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
        RegionGrid::from_die(die, &Technology::itrs_100nm(), 64.0).unwrap()
    }

    /// Every query agrees with the BFS reference across a full ID-style
    /// deletion sequence on a small corridor.
    #[test]
    fn agrees_with_bfs_through_deletion_sequence() {
        let g = grid();
        let mut c = Corridor::new(&g, g.idx(1, 1), g.idx(4, 3), 1);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        let mut bfs = super::super::corridor::CorridorScratch::new();
        // Deterministic pseudo-random deletion order.
        let mut state = 0x9e3779b9u64;
        loop {
            let mut progressed = false;
            for _ in 0..c.num_edges() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = (state >> 33) as usize % c.num_edges();
                let fast = cache.connected_without(&c, e, &mut scratch);
                let slow = c.connected_without(e, &mut bfs);
                assert_eq!(fast, slow, "edge {e} disagrees");
                if fast && c.is_alive(e) {
                    c.kill(e);
                    cache.note_kill(e);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Terminals must still be connected at the end.
        assert!(
            cache.connected_without(&c, c.num_edges() - 1, &mut scratch) || {
                let (t1, t2) = c.terminals();
                t1 == t2
            }
        );
    }

    #[test]
    fn single_bridge_is_not_deletable() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 0), 0);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        assert!(!cache.connected_without(&c, 0, &mut scratch));
    }

    #[test]
    fn cycle_edges_are_deletable_in_o1_after_one_pass() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 1), 0);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        for e in 0..4 {
            assert!(cache.connected_without(&c, e, &mut scratch), "edge {e}");
        }
        assert_eq!(
            scratch.counters.recomputes, 1,
            "one pass serves all queries"
        );
    }

    #[test]
    fn disconnected_terminals_answer_false_for_every_edge() {
        let g = grid();
        // 3x1 corridor: 0 -e0- 1 -e1- 2, terminals at the ends.
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(2, 0), 0);
        assert_eq!(c.num_edges(), 2);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        assert!(!cache.connected_without(&c, 0, &mut scratch));
        assert!(!cache.connected_without(&c, 1, &mut scratch));
        // Force-disconnect (never happens in the ID loop, which only kills
        // deletable edges — but the public API must stay truthful).
        c.kill(1);
        cache.note_kill(1);
        for e in 0..2 {
            assert!(
                !cache.connected_without(&c, e, &mut scratch),
                "already-disconnected corridor must report false for edge {e}"
            );
        }
    }

    /// An unpaired `Corridor::kill` (contract violation) must cost a
    /// recompute, never a stale answer: the revision arithmetic rejects
    /// the intact-path shortcut and the localized repair when kills were
    /// not reported.
    #[test]
    fn unpaired_kill_degrades_to_recompute_not_stale_answer() {
        let g = grid();
        // 2x2 cycle corridor between diagonal terminals.
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 1), 0);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        let mut bfs = super::super::corridor::CorridorScratch::new();
        assert!(cache.connected_without(&c, 0, &mut scratch));
        // Kill WITHOUT note_kill — possibly a witness-path edge.
        for e in 0..c.num_edges() {
            if c.is_alive(e) {
                c.kill(e);
                break;
            }
        }
        for e in 0..c.num_edges() {
            let fast = cache.connected_without(&c, e, &mut scratch);
            let slow = c.connected_without(e, &mut bfs);
            assert_eq!(fast, slow, "edge {e} stale after unpaired kill");
        }
    }

    #[test]
    fn stale_shortcut_skips_recomputes_for_off_path_edges() {
        let g = grid();
        // A wide corridor: killing far-apart cycle edges must not force a
        // recompute each time.
        let c = Corridor::new(&g, g.idx(0, 0), g.idx(5, 3), 1);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        let mut c = c;
        let mut kills = 0;
        for e in 0..c.num_edges() {
            if cache.connected_without(&c, e, &mut scratch) {
                c.kill(e);
                cache.note_kill(e);
                kills += 1;
            }
            if kills >= 8 {
                break;
            }
        }
        assert!(kills >= 8);
        assert!(
            scratch.counters.recomputes < kills,
            "expected fewer recomputes ({}) than kills ({kills})",
            scratch.counters.recomputes
        );
    }

    /// A burst of deletions along the witness path is healed by ONE
    /// localized repair at the next query, not one recompute per hit.
    #[test]
    fn path_kill_burst_heals_with_one_repair() {
        let g = grid();
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(5, 0), 1);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        let mut bfs = super::super::corridor::CorridorScratch::new();
        // Seed the analysis (the verdict itself is irrelevant here).
        let _ = cache.connected_without(&c, 0, &mut scratch);
        assert_eq!(scratch.counters.recomputes, 1);
        // Kill two edges of the installed witness path back to back (a
        // same-route deletion burst), properly paired with note_kill.
        let burst: Vec<u32> = cache.path_edges.iter().copied().take(2).collect();
        assert_eq!(burst.len(), 2, "witness path long enough for a burst");
        for &pe in &burst {
            c.kill(pe as usize);
            cache.note_kill(pe as usize);
        }
        assert!(!cache.path_intact, "burst must break the path");
        // Query an edge that is alive and off the (old) path: exactly one
        // repair, zero additional recomputes.
        let probe = (0..c.num_edges())
            .find(|&e| c.is_alive(e) && !cache.on_path[e])
            .expect("an off-path alive edge exists");
        let fast = cache.connected_without(&c, probe, &mut scratch);
        assert_eq!(fast, c.connected_without(probe, &mut bfs));
        assert!(fast, "wide corridor stays connected without one edge");
        assert_eq!(scratch.counters.repairs, 1, "one repair heals the burst");
        assert_eq!(scratch.counters.recomputes, 1, "no second full recompute");
        assert!(cache.path_intact, "repair re-arms the O(1) shortcut");
        // The very next off-path query rides the repaired path in O(1).
        let probe2 = (0..c.num_edges())
            .find(|&e| c.is_alive(e) && !cache.on_path[e])
            .expect("an off-path alive edge exists");
        let before = scratch.counters.shortcut_hits;
        assert!(cache.connected_without(&c, probe2, &mut scratch));
        assert_eq!(scratch.counters.shortcut_hits, before + 1);
    }

    /// A failed repair (the queried edge became separating while the
    /// cache was stale) is settled locally — the BFS that failed to avoid
    /// the edge doubles as the separation proof — and still answers
    /// exactly like the BFS oracle.
    #[test]
    fn failed_repair_learns_separating_edges() {
        let g = grid();
        // 3x2 corridor between far corners: two rows of a ladder.
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(2, 1), 0);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        let mut bfs = super::super::corridor::CorridorScratch::new();
        // Whittle the corridor down until only one terminal path is left,
        // keeping the cache honest throughout.
        loop {
            let mut killed = false;
            for e in 0..c.num_edges() {
                if c.is_alive(e) && cache.connected_without(&c, e, &mut scratch) {
                    c.kill(e);
                    cache.note_kill(e);
                    killed = true;
                    break;
                }
            }
            if !killed {
                break;
            }
        }
        // Every surviving edge is now separating; the oracle must agree.
        for e in 0..c.num_edges() {
            if c.is_alive(e) {
                assert!(!cache.connected_without(&c, e, &mut scratch));
                assert!(!c.connected_without(e, &mut bfs));
            }
        }
    }
}
