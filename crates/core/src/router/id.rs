//! The iterative-deletion main loop (paper Fig. 1).
//!
//! The inner loop answers "do the terminals survive this deletion?"
//! through the incremental bridge analysis of [`super::connectivity`]
//! (O(1) for almost every query: one component-scoped Tarjan pass per
//! corridor plus localized witness-path repairs) instead of the PR-1
//! per-query BFS, and folds the two whole-corridor demand sweeps of a
//! deletion into one. Both changes are observationally invisible: the
//! route sets stay byte-identical to the preserved PR-1 kernel
//! ([`super::reference::SeedIdRouter`], enforced by the
//! `router_equivalence` suite and the `phase_runtime` bench).

use super::assemble::assemble_trees;
use super::connectivity::{BridgeCache, ConnectivityScratch};
use super::corridor::Corridor;
use super::{ShieldTerm, Weights};
use crate::cancel::CancelToken;
use crate::Result;
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, GridEdge, RouteSet};
use gsino_steiner::decompose::{decompose_net, Connection};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Manhattan distance between two regions in tile steps.
fn t1x_diff(grid: &RegionGrid, a: RegionIdx, b: RegionIdx) -> u32 {
    let (ax, ay) = grid.coords(a);
    let (bx, by) = grid.coords(b);
    ax.abs_diff(bx) + ay.abs_diff(by)
}

/// Counters describing one routing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Two-pin connections after Steiner decomposition.
    pub connections: usize,
    /// Corridor edges before any deletion.
    pub edges_initial: usize,
    /// Edges deleted.
    pub deletions: usize,
    /// Edges kept because they were terminal bridges.
    pub kept: usize,
    /// Stale heap entries that were re-inserted with a fresh weight.
    pub reinserts: usize,
    /// A* pop-loop entries skipped because their region was already
    /// expanded (closed-set / stale-entry skips; A* router only).
    pub stale_skips: usize,
    /// Speculatively routed connections that had to be re-routed at
    /// commit time because a predecessor's commit touched a region their
    /// search read (parallel A* router only).
    pub speculative_reroutes: usize,
    /// Connectivity queries answered in O(1) — from a revision-fresh
    /// bridge set, a monotone verdict, or through the intact witness path
    /// (ID router only).
    pub connectivity_o1_hits: usize,
    /// Localized stale-query resolutions: a component-scoped BFS repaired
    /// the witness path (healing any burst of breaks at once) or proved
    /// the queried edge separating, without recomputing the bridge
    /// analysis (ID router only).
    pub connectivity_repairs: usize,
    /// Full component-scoped Tarjan bridge recomputes (ID router only).
    pub connectivity_recomputes: usize,
}

/// One two-pin connection's routing state.
struct ConnState {
    net: NetId,
    corridor: Corridor,
    /// Static per-edge `f(WL)` term: the wire length of the shortest route
    /// forced through the edge, normalized by the connection's Steiner
    /// (Manhattan) estimate. Edges on a shortest path score 1.0; edges that
    /// would detour the route score proportionally higher, so they are
    /// deleted first unless congestion argues otherwise.
    f_wl: Vec<f64>,
    /// Alive incident-edge counts per local region, per direction.
    presence: Vec<[u16; 2]>,
    /// Minimum edges the final path needs (Manhattan distance in tiles).
    needed_edges: f64,
    /// Alive edge count (denominator of the demand fraction φ).
    alive_edges: usize,
    /// Edges pinned as terminal bridges.
    kept: Vec<bool>,
    /// Global region index per corridor-local region, precomputed so the
    /// hot loops never pay `Corridor::global`'s div/mod.
    globals: Vec<u32>,
    /// Per-edge direction index (0 = H, 1 = V).
    edge_d: Vec<u8>,
    /// Per-edge global region indices of the two endpoints.
    edge_ga: Vec<u32>,
    edge_gb: Vec<u32>,
    /// Cached bridge analysis of the corridor.
    cache: BridgeCache,
    /// Compact list of (local region, direction) cells with presence > 0,
    /// so demand sweeps touch exactly the cells that carry demand instead
    /// of scanning the whole corridor. Shrinks as the corridor thins.
    active: Vec<(u16, u8)>,
    /// Index of each (local, direction) cell in `active`
    /// (`u32::MAX` = absent).
    active_pos: Vec<[u32; 2]>,
}

/// `active_pos` sentinel for a cell that carries no presence.
const NO_CELL: u32 = u32::MAX;

impl ConnState {
    /// Cong–Preas-style probabilistic demand: the fraction of this
    /// connection's presence expected to survive, `needed / alive`. Starts
    /// small while the corridor is full of slack and converges to 1 as the
    /// graph shrinks to the final path.
    fn phi(&self) -> f64 {
        if self.alive_edges == 0 {
            return 1.0;
        }
        (self.needed_edges / self.alive_edges as f64).min(1.0)
    }

    /// Drops the (local, d) cell from the active list (presence hit zero).
    fn deactivate(&mut self, local: u16, d: usize) {
        let pos = self.active_pos[local as usize][d];
        debug_assert_ne!(pos, NO_CELL, "cell was active");
        self.active_pos[local as usize][d] = NO_CELL;
        self.active.swap_remove(pos as usize);
        if let Some(&(ml, md)) = self.active.get(pos as usize) {
            self.active_pos[ml as usize][md as usize] = pos;
        }
    }
}

/// Max-heap entry (f64 weight, connection, edge).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    w: f64,
    conn: u32,
    edge: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // invariant: heap weights are sums of finite coefficients
        // (`GsinoConfig::validate` rejects non-finite `Weights`) times
        // finite geometry, so the comparison is total.
        self.w
            .partial_cmp(&other.w)
            .expect("weights are finite")
            .then_with(|| self.conn.cmp(&other.conn))
            .then_with(|| self.edge.cmp(&other.edge))
    }
}

/// The ID router: routes a whole circuit at once.
///
/// # Example
///
/// ```
/// use gsino_core::router::{IdRouter, ShieldTerm, Weights};
/// use gsino_grid::{Circuit, Net, Point, Rect, RegionGrid, Technology};
///
/// # fn main() -> Result<(), gsino_core::CoreError> {
/// let die = Rect::new(Point::new(0.0, 0.0), Point::new(320.0, 320.0))?;
/// let net = Net::two_pin(0, Point::new(10.0, 10.0), Point::new(300.0, 300.0));
/// let circuit = Circuit::new("t", die, vec![net])?;
/// let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0)?;
/// let router = IdRouter::new(&grid, Weights::default(), ShieldTerm::None);
/// let (routes, stats) = router.route(&circuit)?;
/// assert_eq!(routes.len(), 1);
/// assert!(stats.deletions > 0);
/// # Ok(())
/// # }
/// ```
pub struct IdRouter<'a> {
    grid: &'a RegionGrid,
    weights: Weights,
    shield_term: ShieldTerm,
    halo: u32,
}

impl<'a> IdRouter<'a> {
    /// Creates a router over `grid` with the given Formula (2) constants.
    pub fn new(grid: &'a RegionGrid, weights: Weights, shield_term: ShieldTerm) -> Self {
        IdRouter {
            grid,
            weights,
            shield_term,
            halo: 1,
        }
    }

    /// Decomposes every net into the two-pin connections [`Self::route`]
    /// operates on (order matters: it fixes the heap tie-break indices).
    pub fn prepare(&self, circuit: &Circuit) -> Vec<Connection> {
        let mut conns = Vec::new();
        for net in circuit.nets() {
            conns.extend(decompose_net(net));
        }
        conns
    }

    /// Routes every net of the circuit; returns the route set and counters.
    ///
    /// # Errors
    ///
    /// [`CoreError::RoutingFailed`](crate::CoreError::RoutingFailed) if a
    /// net's connections could not be assembled into a pin-spanning tree
    /// (internal invariant violation).
    pub fn route(&self, circuit: &Circuit) -> Result<(RouteSet, RouterStats)> {
        let conns = self.prepare(circuit);
        self.route_prepared(circuit, &conns)
    }

    /// [`Self::route`] polling a [`CancelToken`] between deletion batches,
    /// so an ECO replay under a deadline can abandon Phase I cleanly.
    ///
    /// # Errors
    ///
    /// [`CoreError::Canceled`](crate::CoreError) once the token
    /// fires, plus the same conditions as [`Self::route`].
    pub fn route_cancel(
        &self,
        circuit: &Circuit,
        cancel: &CancelToken,
    ) -> Result<(RouteSet, RouterStats)> {
        let conns = self.prepare(circuit);
        self.route_prepared_cancel(circuit, &conns, cancel)
    }

    /// Routes pre-decomposed connections (the ID loop without the shared
    /// Steiner preprocessing), so benches can compare deletion kernels
    /// without the identical decomposition cost drowning the signal —
    /// mirroring [`super::AstarRouter::route_prepared`].
    ///
    /// # Errors
    ///
    /// See [`Self::route`].
    pub fn route_prepared(
        &self,
        circuit: &Circuit,
        connections: &[Connection],
    ) -> Result<(RouteSet, RouterStats)> {
        self.route_prepared_cancel(circuit, connections, &CancelToken::never())
    }

    /// [`Self::route_prepared`] polling a [`CancelToken`] once per deletion
    /// batch (every `CANCEL_POLL_POPS` heap pops): often enough that a
    /// fired deadline stops the run within a fraction of a batch, rare
    /// enough that the never-token path costs one branch per pop. The
    /// partially-deleted corridor state is local to this call, so
    /// cancellation leaves nothing to undo.
    ///
    /// # Errors
    ///
    /// [`CoreError::Canceled`](crate::CoreError) once the token
    /// fires, plus the same conditions as [`Self::route`].
    pub fn route_prepared_cancel(
        &self,
        circuit: &Circuit,
        connections: &[Connection],
        cancel: &CancelToken,
    ) -> Result<(RouteSet, RouterStats)> {
        /// Heap pops between cancellation polls.
        const CANCEL_POLL_POPS: usize = 4096;
        cancel.check("phase1")?;
        let mut since_cancel_poll = 0usize;
        let mut stats = RouterStats::default();
        // 1. Build per-connection corridor state.
        let mut conns: Vec<ConnState> = Vec::new();
        for c in connections {
            if let Some(state) = self.connection_state(c) {
                conns.push(state);
            }
        }
        stats.connections = conns.len();
        // The deletion heap addresses (connection, edge) pairs with u32;
        // turn an over-wide workload into a typed error here instead of
        // letting the hot-loop casts below wrap.
        crate::checked_index_u32("connections", conns.len())?;
        for c in &conns {
            crate::checked_index_u32("corridor edges", c.corridor.num_edges())?;
        }

        // 2. Global per-region expected demand (probabilistic presence by
        //    direction, Cong–Preas style), seeded from the active cells.
        let nregions = self.grid.num_regions() as usize;
        let mut demand = [vec![0f64; nregions], vec![0f64; nregions]];
        for c in &conns {
            let phi = c.phi();
            for &(local, d) in &c.active {
                demand[d as usize][c.globals[local as usize] as usize] += phi;
            }
        }

        // 3. Seed the heap with every edge. Collect-then-heapify is O(E)
        //    instead of O(E log E) pushes; the pop sequence is unchanged
        //    because the (w, conn, edge) order is total and every key is
        //    unique, so the popped multiset order does not depend on the
        //    heap's internal layout.
        let mut seed_entries = Vec::new();
        for (ci, c) in conns.iter().enumerate() {
            stats.edges_initial += c.corridor.num_edges();
            for e in 0..c.corridor.num_edges() {
                let w = self.weight(c, e, &demand);
                seed_entries.push(HeapEntry {
                    w,
                    conn: ci as u32,
                    edge: e as u32,
                });
            }
        }
        let mut heap = BinaryHeap::from(seed_entries);

        // 4. Iterative deletion with lazy weight refresh. Weights move in
        //    both directions (expected demand falls as corridors shrink,
        //    but a connection's φ rises as its alternatives are deleted, so
        //    late overflow can RAISE weights). Entries that became cheaper
        //    are re-queued on pop; entries that became more urgent are
        //    caught by periodically re-pushing all live edges.
        let mut scratch = ConnectivityScratch::new();
        #[cfg(debug_assertions)]
        let mut bfs_oracle = super::corridor::CorridorScratch::new();
        let refresh_every = (stats.edges_initial / 8).max(1000);
        let mut since_refresh = 0usize;
        while let Some(HeapEntry { w, conn, edge }) = heap.pop() {
            since_cancel_poll += 1;
            if since_cancel_poll >= CANCEL_POLL_POPS {
                since_cancel_poll = 0;
                cancel.check("phase1")?;
            }
            if since_refresh >= refresh_every {
                since_refresh = 0;
                for (ci, c) in conns.iter().enumerate() {
                    for e in 0..c.corridor.num_edges() {
                        if c.corridor.is_alive(e) && !c.kept[e] {
                            let w = self.weight(c, e, &demand);
                            heap.push(HeapEntry {
                                w,
                                conn: ci as u32,
                                edge: e as u32,
                            });
                        }
                    }
                }
            }
            let c = &mut conns[conn as usize];
            let e = edge as usize;
            if !c.corridor.is_alive(e) || c.kept[e] {
                continue;
            }
            let current = self.weight(c, e, &demand);
            // Weights decay globally as demand drains, so almost every pop
            // is a little stale; only re-queue when the drop is material
            // (5%), otherwise deletion order degenerates into heap churn.
            if w - current > 0.05 * current.abs().max(0.1) {
                stats.reinserts += 1;
                heap.push(HeapEntry {
                    w: current,
                    conn,
                    edge,
                });
                continue;
            }
            let deletable = c.cache.connected_without(&c.corridor, e, &mut scratch);
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                deletable,
                c.corridor.connected_without(e, &mut bfs_oracle),
                "incremental connectivity diverged from the BFS oracle on edge {e}"
            );
            if deletable {
                // Delete: retract the connection's old φ-weighted demand
                // and re-apply with the new φ in ONE sweep over the active
                // cells. The per-cell operation sequence (`-= phi_old`
                // then `+= phi_new`) is exactly the PR-1 kernel's, so the
                // f64 results are bit-identical; only the loop structure
                // changed. The two edge endpoints are the only cells whose
                // presence changes (in the edge's direction only); a cell
                // that dropped to zero leaves the active list first and
                // gets its retract in the fix-up loop below.
                let phi_old = c.phi();
                let (a, b, dir) = c.corridor.edge(e);
                c.corridor.kill(e);
                c.cache.note_kill(e);
                c.alive_edges -= 1;
                let d = match dir {
                    Dir::H => 0,
                    Dir::V => 1,
                };
                let mut dropped = [NO_CELL; 2];
                for (slot, local) in [a, b].into_iter().enumerate() {
                    let p = &mut c.presence[local as usize][d];
                    *p -= 1;
                    if *p == 0 {
                        c.deactivate(local, d);
                        dropped[slot] = c.globals[local as usize];
                    }
                }
                let phi_new = c.phi();
                for &(local, dd) in &c.active {
                    let cell = &mut demand[dd as usize][c.globals[local as usize] as usize];
                    *cell -= phi_old;
                    *cell += phi_new;
                }
                for g in dropped {
                    if g != NO_CELL {
                        demand[d][g as usize] -= phi_old;
                    }
                }
                stats.deletions += 1;
                since_refresh += 1;
            } else {
                c.kept[e] = true;
                stats.kept += 1;
            }
        }
        stats.connectivity_o1_hits = scratch.counters.fresh_hits + scratch.counters.shortcut_hits;
        stats.connectivity_repairs = scratch.counters.repairs;
        stats.connectivity_recomputes = scratch.counters.recomputes;

        // 5. Assemble per-net routes from the surviving connection paths.
        let routes = self.assemble(circuit, &conns)?;
        Ok((routes, stats))
    }

    fn connection_state(&self, c: &Connection) -> Option<ConnState> {
        let t1 = self.grid.region_of(c.from);
        let t2 = self.grid.region_of(c.to);
        if t1 == t2 {
            // Intra-region connection: no global routing needed.
            return None;
        }
        let corridor = Corridor::new(self.grid, t1, t2, self.halo);
        let mut presence = vec![[0u16; 2]; corridor.num_regions()];
        let globals: Vec<u32> = (0..corridor.num_regions())
            .map(|local| corridor.global(self.grid, local as u16))
            .collect();
        // The two-terminal Steiner estimate is the Manhattan distance,
        // floored at one tile so the normalizer is never degenerate.
        let rsmt_um = c
            .manhattan()
            .max(self.grid.tile_w().min(self.grid.tile_h()));
        let (t1l, t2l) = corridor.terminals();
        // Manhattan center distance from each corridor region to the two
        // terminals, cached so the f(WL) loop reads two rows instead of
        // calling `center_distance` four times per edge. The corridor
        // rectangle is convex in the grid graph so this equals the graph
        // distance.
        let dist_t1: Vec<f64> = (0..corridor.num_regions())
            .map(|q| self.grid.center_distance(globals[t1l as usize], globals[q]))
            .collect();
        let dist_t2: Vec<f64> = (0..corridor.num_regions())
            .map(|q| self.grid.center_distance(globals[q], globals[t2l as usize]))
            .collect();
        let mut f_wl = Vec::with_capacity(corridor.num_edges());
        let mut edge_d = Vec::with_capacity(corridor.num_edges());
        let mut edge_ga = Vec::with_capacity(corridor.num_edges());
        let mut edge_gb = Vec::with_capacity(corridor.num_edges());
        for e in 0..corridor.num_edges() {
            let (a, b, dir) = corridor.edge(e);
            let d = match dir {
                Dir::H => 0,
                Dir::V => 1,
            };
            presence[a as usize][d] += 1;
            presence[b as usize][d] += 1;
            edge_d.push(d as u8);
            edge_ga.push(globals[a as usize]);
            edge_gb.push(globals[b as usize]);
            let len_e = match dir {
                Dir::H => self.grid.tile_w(),
                Dir::V => self.grid.tile_h(),
            };
            let through = (dist_t1[a as usize] + len_e + dist_t2[b as usize])
                .min(dist_t1[b as usize] + len_e + dist_t2[a as usize]);
            f_wl.push(through / rsmt_um);
        }
        let kept = vec![false; corridor.num_edges()];
        let needed_edges = ((t1x_diff(self.grid, t1, t2)) as f64).max(1.0);
        let alive_edges = corridor.num_edges();
        let mut active = Vec::new();
        // Cell positions are u32 and locals are u16; corridors are bounded
        // by the t1/t2 bounding box, which the u16 local index already
        // constrains — assert rather than re-check per cell.
        debug_assert!(corridor.num_regions() <= u16::MAX as usize + 1);
        let mut active_pos = vec![[NO_CELL; 2]; corridor.num_regions()];
        for (local, p) in presence.iter().enumerate() {
            for d in 0..2 {
                if p[d] > 0 {
                    active_pos[local][d] = active.len() as u32;
                    active.push((local as u16, d as u8));
                }
            }
        }
        Some(ConnState {
            net: c.net,
            corridor,
            f_wl,
            presence,
            needed_edges,
            alive_edges,
            kept,
            globals,
            edge_d,
            edge_ga,
            edge_gb,
            cache: BridgeCache::new(),
            active,
            active_pos,
        })
    }

    /// Formula (2): `w = α·f(WL) + β·HD + γ·HOFR`, densities averaged over
    /// the edge's two regions. All per-edge lookups come from the tables
    /// precomputed by [`Self::connection_state`]; the arithmetic is the
    /// PR-1 kernel's, operand for operand.
    fn weight(&self, c: &ConnState, e: usize, demand: &[Vec<f64>; 2]) -> f64 {
        let d = c.edge_d[e] as usize;
        let cap = match d {
            0 => self.grid.hc(),
            _ => self.grid.vc(),
        } as f64;
        let mut hd = 0.0;
        let mut hofr = 0.0;
        for g in [c.edge_ga[e] as usize, c.edge_gb[e] as usize] {
            let nns = demand[d][g];
            // The shield reservation enters the density term (HU = Nns +
            // Nss, paper §3.1). The overflow term watches real net demand
            // only: the reservation is a preference, and double-counting
            // speculative shields in the steep γ term was measured to
            // degrade the net distribution itself.
            let used = nns + self.shield_term.shields(nns);
            hd += used / cap;
            hofr += (nns - cap).max(0.0) / cap;
        }
        self.weights.alpha * c.f_wl[e]
            + self.weights.beta * hd / 2.0
            + self.weights.gamma * hofr / 2.0
    }

    /// Builds one [`RouteTree`] per net from the surviving corridor paths
    /// via the shared flat-array assembly (`super::assemble`): union the
    /// connection edges, BFS-span from the source region, prune dangling
    /// non-pin branches with the O(E) worklist pruner.
    fn assemble(&self, circuit: &Circuit, conns: &[ConnState]) -> Result<RouteSet> {
        let mut per_net: HashMap<NetId, Vec<GridEdge>> = HashMap::new();
        for c in conns {
            let entry = per_net.entry(c.net).or_default();
            for e in 0..c.corridor.num_edges() {
                if c.corridor.is_alive(e) {
                    let (a, b, _) = c.corridor.edge(e);
                    let ga = c.corridor.global(self.grid, a);
                    let gb = c.corridor.global(self.grid, b);
                    entry.push(GridEdge::new(self.grid, ga, gb)?);
                }
            }
        }
        assemble_trees(self.grid, circuit, &mut per_net)
    }
}

/// Convenience wrapper: routes with the given weights and shield term.
///
/// # Errors
///
/// See [`IdRouter::route`].
pub fn route_all(
    grid: &RegionGrid,
    circuit: &Circuit,
    weights: Weights,
    shield_term: ShieldTerm,
) -> Result<(RouteSet, RouterStats)> {
    IdRouter::new(grid, weights, shield_term).route(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::tech::Technology;
    use gsino_grid::usage::TrackUsage;

    fn setup(nets: Vec<Net>, side: f64) -> (Circuit, RegionGrid) {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(side, side)).unwrap();
        let circuit = Circuit::new("t", die, nets).unwrap();
        let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
        (circuit, grid)
    }

    #[test]
    fn single_straight_net_routes_minimally() {
        let (circuit, grid) = setup(
            vec![Net::two_pin(
                0,
                Point::new(32.0, 32.0),
                Point::new(600.0, 32.0),
            )],
            640.0,
        );
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let r = routes.get(0).unwrap();
        // Pins 9 columns apart in the same row: 9 edges, all horizontal.
        assert_eq!(r.edges().len(), 9);
        assert_eq!(r.wirelength(&grid), 9.0 * 64.0);
    }

    #[test]
    fn l_shaped_net_has_manhattan_length() {
        let (circuit, grid) = setup(
            vec![Net::two_pin(
                0,
                Point::new(32.0, 32.0),
                Point::new(300.0, 500.0),
            )],
            640.0,
        );
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let r = routes.get(0).unwrap();
        // 4 columns + 7 rows apart → 11 tiles of wire.
        assert_eq!(r.wirelength(&grid), 11.0 * 64.0);
    }

    #[test]
    fn multipin_net_spans_all_pin_regions() {
        let pins = vec![
            Point::new(32.0, 32.0),
            Point::new(600.0, 32.0),
            Point::new(32.0, 600.0),
            Point::new(600.0, 600.0),
        ];
        let (circuit, grid) = setup(vec![Net::new(0, pins.clone())], 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let r = routes.get(0).unwrap();
        let regions: std::collections::HashSet<_> = r.regions().into_iter().collect();
        for p in &pins {
            assert!(regions.contains(&grid.region_of(*p)), "pin {p} not spanned");
        }
    }

    #[test]
    fn intra_region_net_is_trivial() {
        let (circuit, grid) = setup(
            vec![Net::two_pin(
                0,
                Point::new(10.0, 10.0),
                Point::new(20.0, 20.0),
            )],
            640.0,
        );
        let (routes, stats) =
            route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        assert_eq!(routes.get(0).unwrap().edges().len(), 0);
        assert_eq!(stats.connections, 0);
    }

    #[test]
    fn single_pin_net_is_trivial() {
        let (circuit, grid) = setup(vec![Net::new(0, vec![Point::new(10.0, 10.0)])], 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        assert_eq!(routes.get(0).unwrap().edges().len(), 0);
    }

    #[test]
    fn congestion_spreads_parallel_nets() {
        // 30 nets all crossing between the same two columns in row 0..10
        // would overload a single row; the γ term must spread them.
        let mut nets = Vec::new();
        for i in 0..30u32 {
            let y = 16.0 + (i % 3) as f64;
            nets.push(Net::two_pin(i, Point::new(16.0, y), Point::new(620.0, y)));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let usage = TrackUsage::from_routes(&grid, &routes);
        // Capacity is 16 per direction; the 30 nets cannot all sit in row 0
        // without overflowing, so some must detour through other rows.
        let rows_used: Vec<u32> = (0..grid.ny())
            .filter(|&cy| (0..grid.nx()).any(|cx| usage.nets(grid.idx(cx, cy), Dir::H) > 0))
            .collect();
        assert!(
            rows_used.len() >= 2,
            "nets should spread across rows: {rows_used:?}"
        );
    }

    #[test]
    fn all_routes_are_valid_trees() {
        let mut nets = Vec::new();
        for i in 0..25u32 {
            let x = 20.0 + (i as f64 * 97.0) % 600.0;
            let y = 20.0 + (i as f64 * 61.0) % 600.0;
            let u = 20.0 + (i as f64 * 41.0) % 600.0;
            let v = 20.0 + (i as f64 * 83.0) % 600.0;
            nets.push(Net::new(
                i,
                vec![
                    Point::new(x, y),
                    Point::new(u, v),
                    Point::new((x + u) / 2.0, 610.0),
                ],
            ));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (routes, stats) =
            route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        assert_eq!(routes.len(), 25);
        assert!(stats.edges_initial > stats.deletions);
        // RouteTree::new validated tree-ness internally; spot-check paths.
        for net in circuit.nets() {
            let r = routes.get(net.id()).unwrap();
            let root = grid.region_of(net.source());
            for sink in net.sinks() {
                let sr = grid.region_of(*sink);
                assert!(
                    r.path(root, sr).is_some(),
                    "net {} sink unreachable",
                    net.id()
                );
            }
        }
    }

    #[test]
    fn connectivity_is_answered_incrementally() {
        let mut nets = Vec::new();
        for i in 0..12u32 {
            let y = 20.0 + (i as f64 * 47.0) % 580.0;
            nets.push(Net::two_pin(
                i,
                Point::new(24.0, y),
                Point::new(600.0, 620.0 - y),
            ));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (_, stats) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        // Most queries must be O(1) hits; recomputes are bounded by the
        // witness-path traffic, not by the deletion count.
        assert!(stats.connectivity_o1_hits > 0, "no O(1) connectivity hits");
        assert!(
            stats.connectivity_recomputes < stats.deletions + stats.kept,
            "recomputes ({}) should undercut queries ({})",
            stats.connectivity_recomputes,
            stats.deletions + stats.kept
        );
    }

    #[test]
    fn shield_aware_router_runs() {
        use gsino_sino::nss::NssModel;
        let mut nets = Vec::new();
        for i in 0..10u32 {
            nets.push(Net::two_pin(
                i,
                Point::new(16.0, 16.0 + i as f64),
                Point::new(620.0, 16.0 + i as f64),
            ));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let model = NssModel::from_coefficients([0.6, 0.0, 0.4, 0.0, 0.1, 0.0], 0.5);
        let (routes, _) = route_all(
            &grid,
            &circuit,
            Weights::default(),
            ShieldTerm::Estimated { model, rate: 0.5 },
        )
        .unwrap();
        assert_eq!(routes.len(), 10);
    }
}
