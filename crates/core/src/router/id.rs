//! The iterative-deletion main loop (paper Fig. 1).

use super::assemble::assemble_trees;
use super::corridor::{Corridor, CorridorScratch};
use super::{ShieldTerm, Weights};
use crate::Result;
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, GridEdge, RouteSet};
use gsino_steiner::decompose::{decompose_net, Connection};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Manhattan distance between two regions in tile steps.
fn t1x_diff(grid: &RegionGrid, a: RegionIdx, b: RegionIdx) -> u32 {
    let (ax, ay) = grid.coords(a);
    let (bx, by) = grid.coords(b);
    ax.abs_diff(bx) + ay.abs_diff(by)
}

/// Counters describing one routing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Two-pin connections after Steiner decomposition.
    pub connections: usize,
    /// Corridor edges before any deletion.
    pub edges_initial: usize,
    /// Edges deleted.
    pub deletions: usize,
    /// Edges kept because they were terminal bridges.
    pub kept: usize,
    /// Stale heap entries that were re-inserted with a fresh weight.
    pub reinserts: usize,
    /// A* pop-loop entries skipped because their region was already
    /// expanded (closed-set / stale-entry skips; A* router only).
    pub stale_skips: usize,
    /// Speculatively routed connections that had to be re-routed at
    /// commit time because a predecessor's commit touched a region their
    /// search read (parallel A* router only).
    pub speculative_reroutes: usize,
}

/// One two-pin connection's routing state.
struct ConnState {
    net: NetId,
    corridor: Corridor,
    /// Static per-edge `f(WL)` term: the wire length of the shortest route
    /// forced through the edge, normalized by the connection's Steiner
    /// (Manhattan) estimate. Edges on a shortest path score 1.0; edges that
    /// would detour the route score proportionally higher, so they are
    /// deleted first unless congestion argues otherwise.
    f_wl: Vec<f64>,
    /// Alive incident-edge counts per local region, per direction.
    presence: Vec<[u16; 2]>,
    /// Minimum edges the final path needs (Manhattan distance in tiles).
    needed_edges: f64,
    /// Alive edge count (denominator of the demand fraction φ).
    alive_edges: usize,
    /// Edges pinned as terminal bridges.
    kept: Vec<bool>,
}

impl ConnState {
    /// Cong–Preas-style probabilistic demand: the fraction of this
    /// connection's presence expected to survive, `needed / alive`. Starts
    /// small while the corridor is full of slack and converges to 1 as the
    /// graph shrinks to the final path.
    fn phi(&self) -> f64 {
        if self.alive_edges == 0 {
            return 1.0;
        }
        (self.needed_edges / self.alive_edges as f64).min(1.0)
    }

}

/// Max-heap entry (f64 weight, connection, edge).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    w: f64,
    conn: u32,
    edge: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.w
            .partial_cmp(&other.w)
            .expect("weights are finite")
            .then_with(|| self.conn.cmp(&other.conn))
            .then_with(|| self.edge.cmp(&other.edge))
    }
}

/// The ID router: routes a whole circuit at once.
///
/// # Example
///
/// ```
/// use gsino_core::router::{IdRouter, ShieldTerm, Weights};
/// use gsino_grid::{Circuit, Net, Point, Rect, RegionGrid, Technology};
///
/// # fn main() -> Result<(), gsino_core::CoreError> {
/// let die = Rect::new(Point::new(0.0, 0.0), Point::new(320.0, 320.0))?;
/// let net = Net::two_pin(0, Point::new(10.0, 10.0), Point::new(300.0, 300.0));
/// let circuit = Circuit::new("t", die, vec![net])?;
/// let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0)?;
/// let router = IdRouter::new(&grid, Weights::default(), ShieldTerm::None);
/// let (routes, stats) = router.route(&circuit)?;
/// assert_eq!(routes.len(), 1);
/// assert!(stats.deletions > 0);
/// # Ok(())
/// # }
/// ```
pub struct IdRouter<'a> {
    grid: &'a RegionGrid,
    weights: Weights,
    shield_term: ShieldTerm,
    halo: u32,
}

impl<'a> IdRouter<'a> {
    /// Creates a router over `grid` with the given Formula (2) constants.
    pub fn new(grid: &'a RegionGrid, weights: Weights, shield_term: ShieldTerm) -> Self {
        IdRouter { grid, weights, shield_term, halo: 1 }
    }

    /// Routes every net of the circuit; returns the route set and counters.
    ///
    /// # Errors
    ///
    /// [`CoreError::RoutingFailed`] if a net's connections could not be
    /// assembled into a pin-spanning tree (internal invariant violation).
    #[allow(clippy::needless_range_loop)] // direction index d pairs demand[d] with presence[_][d]
    pub fn route(&self, circuit: &Circuit) -> Result<(RouteSet, RouterStats)> {
        let mut stats = RouterStats::default();
        // 1. Decompose every net into two-pin connections.
        let mut conns: Vec<ConnState> = Vec::new();
        for net in circuit.nets() {
            for c in decompose_net(net) {
                if let Some(state) = self.connection_state(&c) {
                    conns.push(state);
                }
            }
        }
        stats.connections = conns.len();

        // 2. Global per-region expected demand (probabilistic presence by
        //    direction, Cong–Preas style).
        let nregions = self.grid.num_regions() as usize;
        let mut demand = [vec![0f64; nregions], vec![0f64; nregions]];
        for c in &conns {
            let phi = c.phi();
            for local in 0..c.corridor.num_regions() {
                let global = c.corridor.global(self.grid, local as u16) as usize;
                for d in 0..2 {
                    if c.presence[local][d] > 0 {
                        demand[d][global] += phi;
                    }
                }
            }
        }

        // 3. Seed the heap with every edge.
        let mut heap = BinaryHeap::new();
        for (ci, c) in conns.iter().enumerate() {
            stats.edges_initial += c.corridor.num_edges();
            for e in 0..c.corridor.num_edges() {
                let w = self.weight(c, e, &demand);
                heap.push(HeapEntry { w, conn: ci as u32, edge: e as u32 });
            }
        }

        // 4. Iterative deletion with lazy weight refresh. Weights move in
        //    both directions (expected demand falls as corridors shrink,
        //    but a connection's φ rises as its alternatives are deleted, so
        //    late overflow can RAISE weights). Entries that became cheaper
        //    are re-queued on pop; entries that became more urgent are
        //    caught by periodically re-pushing all live edges.
        let mut scratch = CorridorScratch::new();
        let refresh_every = (stats.edges_initial / 8).max(1000);
        let mut since_refresh = 0usize;
        while let Some(HeapEntry { w, conn, edge }) = heap.pop() {
            if since_refresh >= refresh_every {
                since_refresh = 0;
                for (ci, c) in conns.iter().enumerate() {
                    for e in 0..c.corridor.num_edges() {
                        if c.corridor.is_alive(e) && !c.kept[e] {
                            let w = self.weight(c, e, &demand);
                            heap.push(HeapEntry { w, conn: ci as u32, edge: e as u32 });
                        }
                    }
                }
            }
            let c = &mut conns[conn as usize];
            let e = edge as usize;
            if !c.corridor.is_alive(e) || c.kept[e] {
                continue;
            }
            let current = self.weight(c, e, &demand);
            // Weights decay globally as demand drains, so almost every pop
            // is a little stale; only re-queue when the drop is material
            // (5%), otherwise deletion order degenerates into heap churn.
            if w - current > 0.05 * current.abs().max(0.1) {
                stats.reinserts += 1;
                heap.push(HeapEntry { w: current, conn, edge });
                continue;
            }
            if c.corridor.connected_without(e, &mut scratch) {
                // Delete: retract the connection's old φ-weighted demand,
                // kill the edge, then re-apply with the new φ.
                let phi_old = c.phi();
                for local in 0..c.corridor.num_regions() {
                    let global = c.corridor.global(self.grid, local as u16) as usize;
                    for d in 0..2 {
                        if c.presence[local][d] > 0 {
                            demand[d][global] -= phi_old;
                        }
                    }
                }
                let (a, b, dir) = c.corridor.edge(e);
                c.corridor.kill(e);
                c.alive_edges -= 1;
                let d = match dir {
                    Dir::H => 0,
                    Dir::V => 1,
                };
                for local in [a, b] {
                    let p = &mut c.presence[local as usize][d];
                    *p -= 1;
                }
                let phi_new = c.phi();
                for local in 0..c.corridor.num_regions() {
                    let global = c.corridor.global(self.grid, local as u16) as usize;
                    for dd in 0..2 {
                        if c.presence[local][dd] > 0 {
                            demand[dd][global] += phi_new;
                        }
                    }
                }
                stats.deletions += 1;
                since_refresh += 1;
            } else {
                c.kept[e] = true;
                stats.kept += 1;
            }
        }

        // 5. Assemble per-net routes from the surviving connection paths.
        let routes = self.assemble(circuit, &conns)?;
        Ok((routes, stats))
    }

    fn connection_state(&self, c: &Connection) -> Option<ConnState> {
        let t1 = self.grid.region_of(c.from);
        let t2 = self.grid.region_of(c.to);
        if t1 == t2 {
            // Intra-region connection: no global routing needed.
            return None;
        }
        let corridor = Corridor::new(self.grid, t1, t2, self.halo);
        let mut presence = vec![[0u16; 2]; corridor.num_regions()];
        // The two-terminal Steiner estimate is the Manhattan distance,
        // floored at one tile so the normalizer is never degenerate.
        let rsmt_um = c.manhattan().max(self.grid.tile_w().min(self.grid.tile_h()));
        // Manhattan distance between two corridor-local regions in µm; the
        // corridor rectangle is convex in the grid graph so this equals the
        // graph distance.
        let dist = |p: u16, q: u16| -> f64 {
            let gp = corridor.global(self.grid, p);
            let gq = corridor.global(self.grid, q);
            self.grid.center_distance(gp, gq)
        };
        let (t1l, t2l) = corridor.terminals();
        let mut f_wl = Vec::with_capacity(corridor.num_edges());
        for e in 0..corridor.num_edges() {
            let (a, b, dir) = corridor.edge(e);
            let d = match dir {
                Dir::H => 0,
                Dir::V => 1,
            };
            presence[a as usize][d] += 1;
            presence[b as usize][d] += 1;
            let len_e = match dir {
                Dir::H => self.grid.tile_w(),
                Dir::V => self.grid.tile_h(),
            };
            let through = (dist(t1l, a) + len_e + dist(b, t2l))
                .min(dist(t1l, b) + len_e + dist(a, t2l));
            f_wl.push(through / rsmt_um);
        }
        let kept = vec![false; corridor.num_edges()];
        let needed_edges = ((t1x_diff(self.grid, t1, t2)) as f64).max(1.0);
        let alive_edges = corridor.num_edges();
        Some(ConnState { net: c.net, corridor, f_wl, presence, needed_edges, alive_edges, kept })
    }

    /// Formula (2): `w = α·f(WL) + β·HD + γ·HOFR`, densities averaged over
    /// the edge's two regions.
    fn weight(&self, c: &ConnState, e: usize, demand: &[Vec<f64>; 2]) -> f64 {
        let (a, b, dir) = c.corridor.edge(e);
        let d = match dir {
            Dir::H => 0,
            Dir::V => 1,
        };
        let cap = match dir {
            Dir::H => self.grid.hc(),
            Dir::V => self.grid.vc(),
        } as f64;
        let ga = c.corridor.global(self.grid, a) as usize;
        let gb = c.corridor.global(self.grid, b) as usize;
        let mut hd = 0.0;
        let mut hofr = 0.0;
        for g in [ga, gb] {
            let nns = demand[d][g];
            // The shield reservation enters the density term (HU = Nns +
            // Nss, paper §3.1). The overflow term watches real net demand
            // only: the reservation is a preference, and double-counting
            // speculative shields in the steep γ term was measured to
            // degrade the net distribution itself.
            let used = nns + self.shield_term.shields(nns);
            hd += used / cap;
            hofr += (nns - cap).max(0.0) / cap;
        }
        self.weights.alpha * c.f_wl[e]
            + self.weights.beta * hd / 2.0
            + self.weights.gamma * hofr / 2.0
    }

    /// Builds one [`RouteTree`] per net from the surviving corridor paths
    /// via the shared flat-array assembly (`super::assemble`): union the
    /// connection edges, BFS-span from the source region, prune dangling
    /// non-pin branches with the O(E) worklist pruner.
    fn assemble(&self, circuit: &Circuit, conns: &[ConnState]) -> Result<RouteSet> {
        let mut per_net: HashMap<NetId, Vec<GridEdge>> = HashMap::new();
        for c in conns {
            let entry = per_net.entry(c.net).or_default();
            for e in 0..c.corridor.num_edges() {
                if c.corridor.is_alive(e) {
                    let (a, b, _) = c.corridor.edge(e);
                    let ga = c.corridor.global(self.grid, a);
                    let gb = c.corridor.global(self.grid, b);
                    entry.push(GridEdge::new(self.grid, ga, gb)?);
                }
            }
        }
        assemble_trees(self.grid, circuit, &mut per_net)
    }
}

/// Convenience wrapper: routes with the given weights and shield term.
///
/// # Errors
///
/// See [`IdRouter::route`].
pub fn route_all(
    grid: &RegionGrid,
    circuit: &Circuit,
    weights: Weights,
    shield_term: ShieldTerm,
) -> Result<(RouteSet, RouterStats)> {
    IdRouter::new(grid, weights, shield_term).route(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::tech::Technology;
    use gsino_grid::usage::TrackUsage;

    fn setup(nets: Vec<Net>, side: f64) -> (Circuit, RegionGrid) {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(side, side)).unwrap();
        let circuit = Circuit::new("t", die, nets).unwrap();
        let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
        (circuit, grid)
    }

    #[test]
    fn single_straight_net_routes_minimally() {
        let (circuit, grid) =
            setup(vec![Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 32.0))], 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        let r = routes.get(0).unwrap();
        // Pins 9 columns apart in the same row: 9 edges, all horizontal.
        assert_eq!(r.edges().len(), 9);
        assert_eq!(r.wirelength(&grid), 9.0 * 64.0);
    }

    #[test]
    fn l_shaped_net_has_manhattan_length() {
        let (circuit, grid) =
            setup(vec![Net::two_pin(0, Point::new(32.0, 32.0), Point::new(300.0, 500.0))], 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        let r = routes.get(0).unwrap();
        // 4 columns + 7 rows apart → 11 tiles of wire.
        assert_eq!(r.wirelength(&grid), 11.0 * 64.0);
    }

    #[test]
    fn multipin_net_spans_all_pin_regions() {
        let pins = vec![
            Point::new(32.0, 32.0),
            Point::new(600.0, 32.0),
            Point::new(32.0, 600.0),
            Point::new(600.0, 600.0),
        ];
        let (circuit, grid) = setup(vec![Net::new(0, pins.clone())], 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        let r = routes.get(0).unwrap();
        let regions: std::collections::HashSet<_> = r.regions().into_iter().collect();
        for p in &pins {
            assert!(regions.contains(&grid.region_of(*p)), "pin {p} not spanned");
        }
    }

    #[test]
    fn intra_region_net_is_trivial() {
        let (circuit, grid) =
            setup(vec![Net::two_pin(0, Point::new(10.0, 10.0), Point::new(20.0, 20.0))], 640.0);
        let (routes, stats) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        assert_eq!(routes.get(0).unwrap().edges().len(), 0);
        assert_eq!(stats.connections, 0);
    }

    #[test]
    fn single_pin_net_is_trivial() {
        let (circuit, grid) = setup(vec![Net::new(0, vec![Point::new(10.0, 10.0)])], 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        assert_eq!(routes.get(0).unwrap().edges().len(), 0);
    }

    #[test]
    fn congestion_spreads_parallel_nets() {
        // 30 nets all crossing between the same two columns in row 0..10
        // would overload a single row; the γ term must spread them.
        let mut nets = Vec::new();
        for i in 0..30u32 {
            let y = 16.0 + (i % 3) as f64;
            nets.push(Net::two_pin(i, Point::new(16.0, y), Point::new(620.0, y)));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        let usage = TrackUsage::from_routes(&grid, &routes);
        // Capacity is 16 per direction; the 30 nets cannot all sit in row 0
        // without overflowing, so some must detour through other rows.
        let rows_used: Vec<u32> = (0..grid.ny())
            .filter(|&cy| {
                (0..grid.nx()).any(|cx| usage.nets(grid.idx(cx, cy), Dir::H) > 0)
            })
            .collect();
        assert!(rows_used.len() >= 2, "nets should spread across rows: {rows_used:?}");
    }

    #[test]
    fn all_routes_are_valid_trees() {
        let mut nets = Vec::new();
        for i in 0..25u32 {
            let x = 20.0 + (i as f64 * 97.0) % 600.0;
            let y = 20.0 + (i as f64 * 61.0) % 600.0;
            let u = 20.0 + (i as f64 * 41.0) % 600.0;
            let v = 20.0 + (i as f64 * 83.0) % 600.0;
            nets.push(Net::new(
                i,
                vec![Point::new(x, y), Point::new(u, v), Point::new((x + u) / 2.0, 610.0)],
            ));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (routes, stats) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
            .unwrap();
        assert_eq!(routes.len(), 25);
        assert!(stats.edges_initial > stats.deletions);
        // RouteTree::new validated tree-ness internally; spot-check paths.
        for net in circuit.nets() {
            let r = routes.get(net.id()).unwrap();
            let root = grid.region_of(net.source());
            for sink in net.sinks() {
                let sr = grid.region_of(*sink);
                assert!(r.path(root, sr).is_some(), "net {} sink unreachable", net.id());
            }
        }
    }

    #[test]
    fn shield_aware_router_runs() {
        use gsino_sino::nss::NssModel;
        let mut nets = Vec::new();
        for i in 0..10u32 {
            nets.push(Net::two_pin(
                i,
                Point::new(16.0, 16.0 + i as f64),
                Point::new(620.0, 16.0 + i as f64),
            ));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let model = NssModel::from_coefficients([0.6, 0.0, 0.4, 0.0, 0.1, 0.0], 0.5);
        let (routes, _) = route_all(
            &grid,
            &circuit,
            Weights::default(),
            ShieldTerm::Estimated { model, rate: 0.5 },
        )
        .unwrap();
        assert_eq!(routes.len(), 10);
    }
}
