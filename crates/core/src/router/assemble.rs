//! Shared flat-array route-tree assembly.
//!
//! Both Phase I routers finish the same way: merge each net's surviving
//! region edges, span them with a BFS tree from the source region, and
//! prune dangling branches that reach no pin. The seed implementation did
//! this twice (once per router) over `HashMap` adjacency/parent/degree
//! maps with an O(E²) leaf-pruning scan; this module does it once over
//! epoch-stamped flat arrays shared across all nets of a run, with a
//! worklist pruner that retires each edge exactly once (O(E)).
//!
//! Determinism: the adjacency CSR preserves the order edges are supplied
//! in (sorted), so the BFS visits regions in exactly the order the seed's
//! insertion-ordered adjacency lists produced, and pruning is confluent —
//! the surviving tree is the union of pin-to-root paths regardless of
//! removal order. Output trees are therefore byte-identical to the seed's.

use crate::{CoreError, Result};
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{GridEdge, RouteSet, RouteTree};
use std::collections::HashMap;

/// Epoch-stamped buffers reused across every net of an assembly pass.
#[derive(Debug, Default)]
pub(crate) struct AssembleScratch {
    epoch: u32,
    /// Per-region incident-edge count (stamped).
    deg: Vec<u32>,
    deg_stamp: Vec<u32>,
    /// Per-region CSR slot start and fill cursor (stamped with `deg`).
    start: Vec<u32>,
    fill: Vec<u32>,
    /// CSR payload: for adjacency, the neighbor region and the edge index.
    adj_region: Vec<RegionIdx>,
    adj_edge: Vec<u32>,
    /// Regions touched this net, in first-touch order.
    nodes: Vec<RegionIdx>,
    /// BFS parent (stamped).
    parent: Vec<RegionIdx>,
    parent_stamp: Vec<u32>,
    /// BFS queue; after the walk it holds the visit order.
    queue: Vec<RegionIdx>,
    /// Pin-region marks (stamped).
    pin_stamp: Vec<u32>,
    /// Tree-edge liveness during pruning.
    alive: Vec<bool>,
    /// Worklist of prunable leaf regions.
    worklist: Vec<RegionIdx>,
    /// Surviving edges, sorted before tree construction.
    out_edges: Vec<GridEdge>,
}

impl AssembleScratch {
    pub(crate) fn new() -> Self {
        AssembleScratch::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.deg.len() < n {
            self.deg.resize(n, 0);
            self.deg_stamp.resize(n, 0);
            self.start.resize(n, 0);
            self.fill.resize(n, 0);
            self.parent.resize(n, 0);
            self.parent_stamp.resize(n, 0);
            self.pin_stamp.resize(n, 0);
        }
    }

    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.deg_stamp.fill(0);
            self.parent_stamp.fill(0);
            self.pin_stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Builds one net's route tree from its (sorted, deduplicated) edges.
    fn net_tree(
        &mut self,
        grid: &RegionGrid,
        net: NetId,
        root: RegionIdx,
        pin_regions: &[RegionIdx],
        edges: &[GridEdge],
    ) -> Result<RouteTree> {
        self.ensure(grid.num_regions() as usize);
        self.next_epoch();
        let epoch = self.epoch;

        // The CSR indexes edges with u32 and each edge takes two adjacency
        // slots; reject (rather than wrap) anything bigger. One check per
        // net — the loops below keep plain casts.
        crate::checked_index_u32("route edge slots", edges.len().saturating_mul(2))?;

        // Degree count + first-touch node list.
        self.nodes.clear();
        for e in edges {
            for r in [e.a(), e.b()] {
                let ri = r as usize;
                if self.deg_stamp[ri] != epoch {
                    self.deg_stamp[ri] = epoch;
                    self.deg[ri] = 0;
                    self.nodes.push(r);
                }
                self.deg[ri] += 1;
            }
        }
        // CSR offsets in node-discovery order; fill preserves edge order,
        // so each region's neighbor list reads exactly like the seed's
        // insertion-ordered `HashMap<RegionIdx, Vec<RegionIdx>>` lists.
        let mut offset = 0u32;
        for &r in &self.nodes {
            let ri = r as usize;
            self.start[ri] = offset;
            self.fill[ri] = offset;
            offset += self.deg[ri];
        }
        self.adj_region.clear();
        self.adj_region.resize(offset as usize, 0);
        self.adj_edge.clear();
        self.adj_edge.resize(offset as usize, 0);
        for (ei, e) in edges.iter().enumerate() {
            for (r, other) in [(e.a(), e.b()), (e.b(), e.a())] {
                let slot = self.fill[r as usize] as usize;
                self.fill[r as usize] += 1;
                self.adj_region[slot] = other;
                self.adj_edge[slot] = ei as u32;
            }
        }

        // Pin marks.
        for &p in pin_regions {
            self.pin_stamp[p as usize] = epoch;
        }

        // BFS spanning walk from the root.
        self.queue.clear();
        self.parent_stamp[root as usize] = epoch;
        self.parent[root as usize] = root;
        self.queue.push(root);
        let mut head = 0;
        while head < self.queue.len() {
            let r = self.queue[head];
            head += 1;
            let ri = r as usize;
            if self.deg_stamp[ri] != epoch {
                continue; // Root disconnected from every edge.
            }
            let (s, f) = (self.start[ri] as usize, self.fill[ri] as usize);
            for slot in s..f {
                let n = self.adj_region[slot];
                if self.parent_stamp[n as usize] != epoch {
                    self.parent_stamp[n as usize] = epoch;
                    self.parent[n as usize] = r;
                    self.queue.push(n);
                }
            }
        }
        for &p in pin_regions {
            if self.parent_stamp[p as usize] != epoch {
                return Err(CoreError::RoutingFailed { net });
            }
        }

        // Tree edges: one per visited non-root region. Reuse `deg` as the
        // tree degree and the CSR as tree incidence (rebuilt below).
        let visited = self.queue.len();
        let tree_edge_count = visited - 1;
        self.out_edges.clear();
        for i in 1..visited {
            let child = self.queue[i];
            self.out_edges
                .push(GridEdge::new(grid, child, self.parent[child as usize])?);
        }
        debug_assert_eq!(self.out_edges.len(), tree_edge_count);

        // Rebuild degree + incidence over the tree edges only.
        for i in 0..visited {
            self.deg[self.queue[i] as usize] = 0;
        }
        for e in &self.out_edges {
            self.deg[e.a() as usize] += 1;
            self.deg[e.b() as usize] += 1;
        }
        let mut offset = 0u32;
        for i in 0..visited {
            let ri = self.queue[i] as usize;
            self.start[ri] = offset;
            self.fill[ri] = offset;
            offset += self.deg[ri];
        }
        self.adj_region.clear();
        self.adj_region.resize(offset as usize, 0);
        self.adj_edge.clear();
        self.adj_edge.resize(offset as usize, 0);
        for (ei, e) in self.out_edges.iter().enumerate() {
            for (r, other) in [(e.a(), e.b()), (e.b(), e.a())] {
                let slot = self.fill[r as usize] as usize;
                self.fill[r as usize] += 1;
                self.adj_region[slot] = other;
                self.adj_edge[slot] = ei as u32;
            }
        }

        // Worklist pruning: retire non-pin leaves until none remain. Each
        // edge dies at most once, so this is O(E) where the seed rescanned
        // the whole edge set per removal (O(E²)).
        self.alive.clear();
        self.alive.resize(tree_edge_count, true);
        self.worklist.clear();
        for i in 0..visited {
            let r = self.queue[i];
            if self.deg[r as usize] == 1 && self.pin_stamp[r as usize] != epoch {
                self.worklist.push(r);
            }
        }
        let mut alive_count = tree_edge_count;
        while let Some(u) = self.worklist.pop() {
            let ui = u as usize;
            if self.deg[ui] != 1 {
                continue; // Already fully pruned via its only edge.
            }
            let (s, f) = (self.start[ui] as usize, self.fill[ui] as usize);
            for slot in s..f {
                let ei = self.adj_edge[slot] as usize;
                if !self.alive[ei] {
                    continue;
                }
                let v = self.adj_region[slot];
                self.alive[ei] = false;
                alive_count -= 1;
                self.deg[ui] -= 1;
                self.deg[v as usize] -= 1;
                if self.deg[v as usize] == 1 && self.pin_stamp[v as usize] != epoch {
                    self.worklist.push(v);
                }
                break;
            }
        }

        let mut tree: Vec<GridEdge> = self
            .out_edges
            .iter()
            .zip(self.alive.iter())
            .filter_map(|(e, alive)| alive.then_some(*e))
            .collect();
        debug_assert_eq!(tree.len(), alive_count);
        tree.sort_unstable();
        RouteTree::new(grid, net, root, tree).map_err(CoreError::from)
    }
}

/// Assembles one [`RouteTree`] per net from per-net edge pools: merge,
/// BFS-span from the source region, prune dangling non-pin branches.
///
/// Shared by both Phase I routers. Edges may contain duplicates; they are
/// sorted and deduplicated here so tie-breaking is deterministic.
///
/// # Errors
///
/// [`CoreError::RoutingFailed`] if a net's pins are not all connected by
/// its edge pool (internal invariant violation).
pub(crate) fn assemble_trees(
    grid: &RegionGrid,
    circuit: &Circuit,
    per_net: &mut HashMap<NetId, Vec<GridEdge>>,
) -> Result<RouteSet> {
    let mut scratch = AssembleScratch::new();
    let mut pin_regions: Vec<RegionIdx> = Vec::new();
    let mut routes = RouteSet::with_capacity(circuit.num_nets());
    for net in circuit.nets() {
        let root = grid.region_of(net.source());
        let edges = match per_net.get_mut(&net.id()) {
            None => {
                routes.insert(RouteTree::trivial(net.id(), root))?;
                continue;
            }
            Some(edges) => {
                edges.sort_unstable();
                edges.dedup();
                &*edges
            }
        };
        pin_regions.clear();
        pin_regions.extend(net.pins().iter().map(|p| grid.region_of(*p)));
        pin_regions.sort_unstable();
        pin_regions.dedup();
        routes.insert(scratch.net_tree(grid, net.id(), root, &pin_regions, edges)?)?;
    }
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::tech::Technology;

    fn grid() -> RegionGrid {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
        RegionGrid::from_die(die, &Technology::itrs_100nm(), 64.0).unwrap()
    }

    #[test]
    fn prunes_dangling_branch() {
        let g = grid();
        let net = Net::two_pin(0, Point::new(32.0, 32.0), Point::new(160.0, 32.0));
        let die = *g.die();
        let circuit = Circuit::new("t", die, vec![net]).unwrap();
        // Path (0,0)-(1,0)-(2,0) plus a dangling stub (1,0)-(1,1)-(1,2).
        let edges = vec![
            GridEdge::new(&g, g.idx(0, 0), g.idx(1, 0)).unwrap(),
            GridEdge::new(&g, g.idx(1, 0), g.idx(2, 0)).unwrap(),
            GridEdge::new(&g, g.idx(1, 0), g.idx(1, 1)).unwrap(),
            GridEdge::new(&g, g.idx(1, 1), g.idx(1, 2)).unwrap(),
        ];
        let mut per_net = HashMap::from([(0u32, edges)]);
        let routes = assemble_trees(&g, &circuit, &mut per_net).unwrap();
        let r = routes.get(0).unwrap();
        assert_eq!(r.edges().len(), 2, "stub must be pruned: {:?}", r.edges());
    }

    #[test]
    fn cycle_collapses_to_tree() {
        let g = grid();
        let net = Net::two_pin(0, Point::new(32.0, 32.0), Point::new(96.0, 96.0));
        let circuit = Circuit::new("t", *g.die(), vec![net]).unwrap();
        // Full 2x2 cycle; the tree must drop exactly one edge.
        let edges = vec![
            GridEdge::new(&g, g.idx(0, 0), g.idx(1, 0)).unwrap(),
            GridEdge::new(&g, g.idx(0, 0), g.idx(0, 1)).unwrap(),
            GridEdge::new(&g, g.idx(1, 0), g.idx(1, 1)).unwrap(),
            GridEdge::new(&g, g.idx(0, 1), g.idx(1, 1)).unwrap(),
        ];
        let mut per_net = HashMap::from([(0u32, edges)]);
        let routes = assemble_trees(&g, &circuit, &mut per_net).unwrap();
        assert_eq!(routes.get(0).unwrap().edges().len(), 2);
    }

    #[test]
    fn disconnected_pin_is_an_error() {
        let g = grid();
        let net = Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 600.0));
        let circuit = Circuit::new("t", *g.die(), vec![net]).unwrap();
        let edges = vec![GridEdge::new(&g, g.idx(0, 0), g.idx(1, 0)).unwrap()];
        let mut per_net = HashMap::from([(0u32, edges)]);
        assert!(matches!(
            assemble_trees(&g, &circuit, &mut per_net),
            Err(CoreError::RoutingFailed { net: 0 })
        ));
    }

    #[test]
    fn unrouted_net_gets_trivial_tree() {
        let g = grid();
        let net = Net::new(0, vec![Point::new(10.0, 10.0)]);
        let circuit = Circuit::new("t", *g.die(), vec![net]).unwrap();
        let routes = assemble_trees(&g, &circuit, &mut HashMap::new()).unwrap();
        assert_eq!(routes.get(0).unwrap().edges().len(), 0);
    }

    #[test]
    fn scratch_reuse_across_many_nets_is_isolated() {
        let g = grid();
        let nets: Vec<Net> = (0..30)
            .map(|i| {
                let y = 32.0 + (i as f64 * 64.0) % 576.0;
                Net::two_pin(i, Point::new(32.0, y), Point::new(600.0, y))
            })
            .collect();
        let circuit = Circuit::new("t", *g.die(), nets).unwrap();
        let mut per_net: HashMap<NetId, Vec<GridEdge>> = HashMap::new();
        for net in circuit.nets() {
            let (x0, y) = g.coords(g.region_of(net.source()));
            let (x1, _) = g.coords(g.region_of(net.pins()[1]));
            let edges: Vec<GridEdge> = (x0..x1)
                .map(|x| GridEdge::new(&g, g.idx(x, y), g.idx(x + 1, y)).unwrap())
                .collect();
            per_net.insert(net.id(), edges);
        }
        let routes = assemble_trees(&g, &circuit, &mut per_net).unwrap();
        for net in circuit.nets() {
            assert_eq!(routes.get(net.id()).unwrap().edges().len(), 9);
        }
    }
}
