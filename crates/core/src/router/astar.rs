//! Sequential A* global router — the paper's §5 future-work router.
//!
//! §5: *"A more efficient global router will be developed or be integrated
//! into the GSINO framework."* This is that router: connections are routed
//! one at a time along least-cost region paths (congestion-aware A*), which
//! is far faster than iterative deletion but **order-dependent** — exactly
//! the trade-off the paper cites for choosing ID ("less efficient but may
//! lead to better solutions"). The `ablation_router` bench measures both
//! sides of that trade.
//!
//! Cost model per region step, mirroring Formula (2)'s terms: the tile
//! length (wire length), β·HD with `HU = Nns + Nss` (committed demand plus
//! the GSINO shield reservation), and γ·HOFR once a region would overflow.
//!
//! # Implementation
//!
//! The search kernel is the flat-array [`SearchScratch`] (epoch-stamped
//! `g`/`prev` arrays plus a monotone bucket heap) instead of the seed's
//! per-call `HashMap`s and `BinaryHeap`; the seed lives on in
//! [`super::reference`] as the correctness and performance baseline, and
//! the `router_equivalence` suite proves the two produce byte-identical
//! route sets. [`AstarRouter::route_with_threads`] additionally routes
//! batches of connections speculatively across threads and commits them in
//! the sequential order, re-routing any connection whose search read a
//! region that an earlier commit in the batch touched — so the parallel
//! output equals the sequential output bit for bit (see `router` module
//! docs for the argument).

use super::assemble::assemble_trees;
use super::scratch::SearchScratch;
use super::{ShieldTerm, Weights};
use crate::{CoreError, Result};
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, GridEdge, RouteSet};
use gsino_steiner::decompose::{decompose_net, Connection};
use std::collections::HashMap;

/// The sequential congestion-aware A* router.
///
/// # Example
///
/// ```
/// use gsino_core::router::{AstarRouter, ShieldTerm, Weights};
/// use gsino_grid::{Circuit, Net, Point, Rect, RegionGrid, Technology};
///
/// # fn main() -> Result<(), gsino_core::CoreError> {
/// let die = Rect::new(Point::new(0.0, 0.0), Point::new(320.0, 320.0))?;
/// let net = Net::two_pin(0, Point::new(10.0, 10.0), Point::new(300.0, 300.0));
/// let circuit = Circuit::new("t", die, vec![net])?;
/// let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0)?;
/// let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
///     .route(&circuit)?;
/// assert_eq!(routes.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct AstarRouter<'a> {
    grid: &'a RegionGrid,
    weights: Weights,
    shield_term: ShieldTerm,
    /// Per-region `(cx, cy)`, precomputed so the expansion loop never
    /// divides.
    coords: Vec<(u32, u32)>,
    /// Per-region geometric centers, precomputed with the exact same
    /// arithmetic as [`RegionGrid::center`] so heuristic values (and
    /// therefore tie-breaking) match the seed router bit for bit.
    centers: Vec<gsino_grid::geom::Point>,
}

/// One speculative search result awaiting ordered commit.
enum Speculative {
    /// Terminals share a region; nothing to route.
    Skip,
    /// A path plus the set of regions whose demand the search read.
    Found {
        path: Vec<RegionIdx>,
        reads: Vec<RegionIdx>,
    },
    /// The search failed; the ordered re-route will surface the error.
    Failed,
}

impl<'a> AstarRouter<'a> {
    /// Creates the router (precomputes per-region coordinate and center
    /// tables, O(regions)).
    pub fn new(grid: &'a RegionGrid, weights: Weights, shield_term: ShieldTerm) -> Self {
        let coords = (0..grid.num_regions()).map(|r| grid.coords(r)).collect();
        let centers = (0..grid.num_regions()).map(|r| grid.center(r)).collect();
        AstarRouter {
            grid,
            weights,
            shield_term,
            coords,
            centers,
        }
    }

    /// A scratch sized for this router's grid: the heap bucket quantum is
    /// one minimum step cost, so each bucket holds about one wavefront
    /// ring. Callers of [`AstarRouter::route_prepared`] should obtain
    /// their scratch here rather than `SearchScratch::new()`, whose
    /// default quantum is not tuned to the grid.
    pub fn make_scratch(&self) -> SearchScratch {
        SearchScratch::with_bucket_width(
            self.weights.alpha * self.grid.tile_w().min(self.grid.tile_h()),
        )
    }

    /// Routes the circuit sequentially with an internal scratch.
    ///
    /// # Errors
    ///
    /// [`CoreError::RoutingFailed`] if a connection's target region cannot
    /// be reached or route assembly fails.
    pub fn route(&self, circuit: &Circuit) -> Result<(RouteSet, super::RouterStats)> {
        let mut scratch = self.make_scratch();
        self.route_with_scratch(circuit, &mut scratch)
    }

    /// Routes the circuit, batching independent connections across
    /// `threads` worker threads (`0` = available parallelism).
    ///
    /// Speculative searches run against a demand snapshot; commits happen
    /// in the sequential order, and any connection whose search read a
    /// region a predecessor's commit changed is re-routed on the spot — so
    /// the result is bit-for-bit identical to [`AstarRouter::route`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AstarRouter::route`].
    pub fn route_with_threads(
        &self,
        circuit: &Circuit,
        threads: usize,
    ) -> Result<(RouteSet, super::RouterStats)> {
        let conns = self.prepare(circuit);
        self.route_prepared_with_threads(circuit, &conns, threads)
    }

    /// Parallel variant of [`AstarRouter::route_prepared`]: same
    /// speculative batching and ordered commit as
    /// [`AstarRouter::route_with_threads`].
    ///
    /// # Errors
    ///
    /// See [`AstarRouter::route`].
    pub fn route_prepared_with_threads(
        &self,
        circuit: &Circuit,
        conns: &[Connection],
        threads: usize,
    ) -> Result<(RouteSet, super::RouterStats)> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 {
            let mut scratch = self.make_scratch();
            return self.route_prepared(circuit, conns, &mut scratch);
        }
        self.route_parallel(circuit, conns, threads)
    }

    /// Routes the circuit sequentially, reusing caller-owned scratch space
    /// (epoch stamping makes consecutive calls independent).
    ///
    /// # Errors
    ///
    /// See [`AstarRouter::route`].
    pub fn route_with_scratch(
        &self,
        circuit: &Circuit,
        scratch: &mut SearchScratch,
    ) -> Result<(RouteSet, super::RouterStats)> {
        let conns = self.prepare(circuit);
        self.route_prepared(circuit, &conns, scratch)
    }

    /// Routes pre-decomposed connections (see [`AstarRouter::prepare`])
    /// sequentially over caller-owned scratch space.
    ///
    /// Splitting preparation from routing lets batch flows and benches
    /// decompose once and route many times; `conns` must be the exact
    /// output of [`AstarRouter::prepare`] for the same circuit (the
    /// longest-first order is part of the router's contract).
    ///
    /// # Errors
    ///
    /// See [`AstarRouter::route`].
    pub fn route_prepared(
        &self,
        circuit: &Circuit,
        conns: &[Connection],
        scratch: &mut SearchScratch,
    ) -> Result<(RouteSet, super::RouterStats)> {
        let mut stats = super::RouterStats {
            connections: conns.len(),
            ..Default::default()
        };
        let nregions = self.grid.num_regions() as usize;
        let mut demand = [vec![0u32; nregions], vec![0u32; nregions]];
        let mut per_net: HashMap<NetId, Vec<GridEdge>> = HashMap::new();
        scratch.counters = Default::default();
        for c in conns {
            let t1 = self.grid.region_of(c.from);
            let t2 = self.grid.region_of(c.to);
            if t1 == t2 {
                continue;
            }
            let path = self
                .astar(scratch, t1, t2, &demand)
                .ok_or(CoreError::RoutingFailed { net: c.net })?;
            commit_path(
                self.grid,
                path,
                &mut demand,
                per_net.entry(c.net).or_default(),
                None,
            )?;
        }
        stats.stale_skips = scratch.counters.stale_skips;
        let routes = assemble_trees(self.grid, circuit, &mut per_net)?;
        Ok((routes, stats))
    }

    fn route_parallel(
        &self,
        circuit: &Circuit,
        conns: &[Connection],
        threads: usize,
    ) -> Result<(RouteSet, super::RouterStats)> {
        use std::sync::mpsc;
        use std::sync::Arc;

        let mut stats = super::RouterStats {
            connections: conns.len(),
            ..Default::default()
        };
        let nregions = self.grid.num_regions() as usize;
        let mut demand = [vec![0u32; nregions], vec![0u32; nregions]];
        // `version[r]` is the commit ordinal that last changed region r's
        // demand; a speculative search is valid iff nothing it read moved
        // after its snapshot.
        let mut version: Vec<u32> = vec![0; nregions];
        let mut commit_seq: u32 = 0;
        let mut per_net: HashMap<NetId, Vec<GridEdge>> = HashMap::new();
        let mut committer = self.make_scratch();
        // Batches several times the thread count keep speculation windows
        // (and thus re-route rates) small while leaving every worker a few
        // connections per round.
        let batch = threads * 4;

        // One persistent worker per thread for the whole route: each gets
        // its batch assignment over a channel (the chunk plus an Arc'd
        // demand snapshot frozen at batch start) and reports its stripe's
        // results back; spawning per batch would cost a thread spawn/join
        // cycle every `batch` connections.
        type Snapshot = Arc<[Vec<u32>; 2]>;
        let mut result = Ok(());
        let routes_out: Option<RouteSet> = std::thread::scope(|scope| {
            let (result_tx, result_rx) =
                mpsc::channel::<(usize, Vec<(usize, Speculative)>, usize)>();
            let mut batch_txs: Vec<mpsc::Sender<(&[Connection], Snapshot)>> = Vec::new();
            for w in 0..threads {
                let (tx, rx) = mpsc::channel::<(&[Connection], Snapshot)>();
                batch_txs.push(tx);
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    let mut scratch = self.make_scratch();
                    scratch.set_record_reads(true);
                    while let Ok((chunk, snapshot)) = rx.recv() {
                        let before = scratch.counters.stale_skips;
                        let mut out = Vec::new();
                        let mut i = w;
                        while i < chunk.len() {
                            let c = &chunk[i];
                            let t1 = self.grid.region_of(c.from);
                            let t2 = self.grid.region_of(c.to);
                            let spec = if t1 == t2 {
                                Speculative::Skip
                            } else {
                                match self.astar(&mut scratch, t1, t2, &snapshot) {
                                    Some(path) => Speculative::Found {
                                        path: path.to_vec(),
                                        reads: scratch.reads().to_vec(),
                                    },
                                    None => Speculative::Failed,
                                }
                            };
                            out.push((i, spec));
                            i += threads;
                        }
                        let skips = scratch.counters.stale_skips - before;
                        if result_tx.send((w, out, skips)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(result_tx);

            let mut start = 0;
            while start < conns.len() {
                let chunk = &conns[start..(start + batch).min(conns.len())];
                start += chunk.len();
                let snapshot: Snapshot = Arc::new(demand.clone());
                for tx in &batch_txs {
                    if tx.send((chunk, Arc::clone(&snapshot))).is_err() {
                        result = Err(CoreError::RoutingFailed { net: chunk[0].net });
                        return None;
                    }
                }
                let mut slots: Vec<Option<Speculative>> = Vec::new();
                slots.resize_with(chunk.len(), || None);
                for _ in 0..threads {
                    let Ok((_, stripe, skips)) = result_rx.recv() else {
                        result = Err(CoreError::RoutingFailed { net: chunk[0].net });
                        return None;
                    };
                    stats.stale_skips += skips;
                    for (i, spec) in stripe {
                        slots[i] = Some(spec);
                    }
                }
                let snap = commit_seq;
                for (slot, c) in slots.into_iter().zip(chunk) {
                    // invariant: the speculative pass above filled every
                    // slot of this chunk before we got here.
                    let spec = slot.expect("every slot routed");
                    let valid = match &spec {
                        Speculative::Skip => continue,
                        Speculative::Found { reads, .. } => {
                            reads.iter().all(|&r| version[r as usize] <= snap)
                        }
                        Speculative::Failed => false,
                    };
                    commit_seq += 1;
                    let commit = if valid {
                        let Speculative::Found { path, .. } = spec else {
                            // invariant: `valid` is only true for Found.
                            unreachable!()
                        };
                        commit_path(
                            self.grid,
                            &path,
                            &mut demand,
                            per_net.entry(c.net).or_default(),
                            Some((&mut version, commit_seq)),
                        )
                    } else {
                        stats.speculative_reroutes += 1;
                        let t1 = self.grid.region_of(c.from);
                        let t2 = self.grid.region_of(c.to);
                        match self.astar(&mut committer, t1, t2, &demand) {
                            None => Err(CoreError::RoutingFailed { net: c.net }),
                            Some(path) => {
                                let path = path.to_vec();
                                commit_path(
                                    self.grid,
                                    &path,
                                    &mut demand,
                                    per_net.entry(c.net).or_default(),
                                    Some((&mut version, commit_seq)),
                                )
                            }
                        }
                    };
                    if let Err(e) = commit {
                        result = Err(e);
                        return None;
                    }
                }
            }
            drop(batch_txs); // Workers drain and exit before the scope joins.
            stats.stale_skips += committer.counters.stale_skips;
            match assemble_trees(self.grid, circuit, &mut per_net) {
                Ok(routes) => Some(routes),
                Err(e) => {
                    result = Err(e);
                    None
                }
            }
        });
        result?;
        // invariant: the worker stores routes before returning Ok.
        let routes = routes_out.expect("Ok result implies routes");
        Ok((routes, stats))
    }

    /// Steiner-decomposes every net into two-pin connections, longest
    /// first (the standard sequential-router ordering heuristic: the
    /// hardest connections see the emptiest chip). The output feeds
    /// [`AstarRouter::route_prepared`].
    pub fn prepare(&self, circuit: &Circuit) -> Vec<Connection> {
        let mut conns: Vec<Connection> = Vec::new();
        for net in circuit.nets() {
            conns.extend(decompose_net(net));
        }
        conns.sort_by(|a, b| {
            // invariant: manhattan lengths of in-die pins are finite.
            b.manhattan()
                .partial_cmp(&a.manhattan())
                .expect("finite lengths")
                .then_with(|| a.net.cmp(&b.net))
        });
        conns
    }

    /// Congestion-aware A* between two regions over the flat scratch.
    /// Returns `None` if `to` is unreachable (never panics — the seed
    /// indexed `prev[&cur]` and panicked here).
    fn astar<'s>(
        &self,
        scratch: &'s mut SearchScratch,
        from: RegionIdx,
        to: RegionIdx,
        demand: &[Vec<u32>; 2],
    ) -> Option<&'s [RegionIdx]> {
        let grid = self.grid;
        let coords = &self.coords;
        let centers = &self.centers;
        let target_center = centers[to as usize];
        scratch
            .astar(
                grid.num_regions() as usize,
                from,
                to,
                // neighbor_array order (W, E, S, N) with the cached,
                // division-free coordinates.
                |r| {
                    let (cx, cy) = coords[r as usize];
                    grid.neighbor_array_at(r, cx, cy)
                },
                |a, b| self.step_cost(a, b, demand),
                |r| centers[r as usize].manhattan(target_center),
            )
            .ok()
    }

    /// Cost of stepping across one region boundary: length plus the same
    /// density/overflow pressure as Formula (2), scaled into µm.
    fn step_cost(&self, a: RegionIdx, b: RegionIdx, demand: &[Vec<u32>; 2]) -> f64 {
        let edge_dir = {
            let (ax, ay) = self.coords[a as usize];
            let (bx, by) = self.coords[b as usize];
            debug_assert!(ax.abs_diff(bx) + ay.abs_diff(by) == 1);
            if ay == by {
                Dir::H
            } else {
                Dir::V
            }
        };
        let (len, cap, d) = match edge_dir {
            Dir::H => (self.grid.tile_w(), self.grid.hc() as f64, 0),
            Dir::V => (self.grid.tile_h(), self.grid.vc() as f64, 1),
        };
        let mut penalty = 0.0;
        for r in [a, b] {
            let nns = demand[d][r as usize] as f64;
            let used = nns + self.shield_term.shields(nns);
            penalty += self.weights.beta * (used / cap) / 2.0;
            penalty += self.weights.gamma * ((used - cap).max(0.0) / cap) / 2.0;
        }
        // α scales the pure length term, matching Formula (2)'s balance.
        self.weights.alpha * len + penalty * len
    }
}

/// Commits one routed path: bumps demand on both endpoint regions of every
/// edge, collects the edges into the net's pool, and (in parallel mode)
/// stamps the touched regions with the commit ordinal.
fn commit_path(
    grid: &RegionGrid,
    path: &[RegionIdx],
    demand: &mut [Vec<u32>; 2],
    edges_out: &mut Vec<GridEdge>,
    mut version: Option<(&mut Vec<u32>, u32)>,
) -> Result<()> {
    for w in path.windows(2) {
        let edge = GridEdge::new(grid, w[0], w[1])?;
        let d = match edge.dir(grid) {
            Dir::H => 0,
            Dir::V => 1,
        };
        for r in [w[0], w[1]] {
            demand[d][r as usize] += 1;
            if let Some((version, seq)) = version.as_mut() {
                version[r as usize] = *seq;
            }
        }
        edges_out.push(edge);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::tech::Technology;
    use gsino_grid::usage::TrackUsage;
    use std::collections::HashSet;

    fn setup(nets: Vec<Net>, side: f64) -> (Circuit, RegionGrid) {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(side, side)).unwrap();
        let circuit = Circuit::new("t", die, nets).unwrap();
        let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
        (circuit, grid)
    }

    #[test]
    fn straight_net_routes_minimally() {
        let (circuit, grid) = setup(
            vec![Net::two_pin(
                0,
                Point::new(32.0, 32.0),
                Point::new(600.0, 32.0),
            )],
            640.0,
        );
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        assert_eq!(routes.get(0).unwrap().wirelength(&grid), 9.0 * 64.0);
    }

    #[test]
    fn multipin_spans_all_pins() {
        let pins = vec![
            Point::new(32.0, 32.0),
            Point::new(600.0, 32.0),
            Point::new(32.0, 600.0),
        ];
        let (circuit, grid) = setup(vec![Net::new(0, pins.clone())], 640.0);
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        let r = routes.get(0).unwrap();
        let regions: HashSet<_> = r.regions().into_iter().collect();
        for p in &pins {
            assert!(regions.contains(&grid.region_of(*p)));
        }
    }

    #[test]
    fn congestion_cost_spreads_nets() {
        let mut nets = Vec::new();
        for i in 0..40u32 {
            let y = 16.0 + (i % 4) as f64;
            nets.push(Net::two_pin(i, Point::new(16.0, y), Point::new(620.0, y)));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        let usage = TrackUsage::from_routes(&grid, &routes);
        let rows_used = (0..grid.ny())
            .filter(|&cy| (0..grid.nx()).any(|cx| usage.nets(grid.idx(cx, cy), Dir::H) > 0))
            .count();
        assert!(
            rows_used >= 3,
            "A* must spread 40 nets beyond capacity-16 rows"
        );
    }

    #[test]
    fn paths_match_id_router_on_sparse_input() {
        // With no congestion both routers find shortest trees, so total
        // wire length should agree.
        let (circuit, grid) = setup(
            vec![
                Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 500.0)),
                Net::two_pin(1, Point::new(100.0, 600.0), Point::new(500.0, 100.0)),
            ],
            640.0,
        );
        let (a, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        let (b, _) =
            super::super::route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        assert_eq!(a.total_wirelength(&grid), b.total_wirelength(&grid));
    }

    #[test]
    fn deterministic() {
        let (circuit, grid) = setup(
            (0..20u32)
                .map(|i| {
                    let x = 20.0 + (i as f64 * 97.0) % 600.0;
                    let y = 20.0 + (i as f64 * 61.0) % 600.0;
                    Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
                })
                .collect(),
            640.0,
        );
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let (a, _) = router.route(&circuit).unwrap();
        let (b, _) = router.route(&circuit).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let (circuit, grid) = setup(
            (0..15u32)
                .map(|i| {
                    let x = 24.0 + (i as f64 * 83.0) % 580.0;
                    let y = 24.0 + (i as f64 * 59.0) % 580.0;
                    Net::two_pin(i, Point::new(x, y), Point::new(616.0 - x, 616.0 - y))
                })
                .collect(),
            640.0,
        );
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let mut scratch = router.make_scratch();
        let (a, _) = router.route_with_scratch(&circuit, &mut scratch).unwrap();
        // Same scratch, second run: epoch stamping must isolate it fully.
        let (b, _) = router.route_with_scratch(&circuit, &mut scratch).unwrap();
        let (fresh, _) = router.route(&circuit).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, fresh);
    }

    #[test]
    fn parallel_routing_matches_sequential_bit_for_bit() {
        // Dense enough that speculative searches collide and re-route.
        let (circuit, grid) = setup(
            (0..60u32)
                .map(|i| {
                    let x = 16.0 + (i as f64 * 37.0) % 600.0;
                    let y = 16.0 + (i as f64 * 53.0) % 600.0;
                    Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
                })
                .collect(),
            640.0,
        );
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let (seq, _) = router.route(&circuit).unwrap();
        for threads in [2, 3, 8] {
            let (par, _) = router.route_with_threads(&circuit, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn degenerate_one_by_n_grid_routes_without_panicking() {
        // Regression for the seed's `prev[&cur]` panic path: a 1×N die
        // exercises the narrowest possible search frontier.
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(64.0, 640.0)).unwrap();
        let nets = vec![
            Net::two_pin(0, Point::new(32.0, 16.0), Point::new(32.0, 620.0)),
            Net::two_pin(1, Point::new(16.0, 320.0), Point::new(48.0, 16.0)),
        ];
        let circuit = Circuit::new("thin", die, nets).unwrap();
        let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
        assert_eq!((grid.nx(), grid.ny()), (1, 10));
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        assert_eq!(routes.get(0).unwrap().wirelength(&grid), 9.0 * 64.0);
        let (par, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route_with_threads(&circuit, 4)
            .unwrap();
        assert_eq!(routes, par);
    }

    #[test]
    fn stale_skips_are_counted() {
        let (circuit, grid) = setup(
            (0..30u32)
                .map(|i| {
                    let y = 16.0 + (i % 3) as f64;
                    Net::two_pin(i, Point::new(16.0, y), Point::new(620.0, y))
                })
                .collect(),
            640.0,
        );
        let (_, stats) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        assert!(
            stats.stale_skips > 0,
            "congested search must hit stale entries"
        );
    }
}
