//! Sequential A* global router — the paper's §5 future-work router.
//!
//! §5: *"A more efficient global router will be developed or be integrated
//! into the GSINO framework."* This is that router: connections are routed
//! one at a time along least-cost region paths (congestion-aware A*), which
//! is far faster than iterative deletion but **order-dependent** — exactly
//! the trade-off the paper cites for choosing ID ("less efficient but may
//! lead to better solutions"). The `ablation_router` bench measures both
//! sides of that trade.
//!
//! Cost model per region step, mirroring Formula (2)'s terms: the tile
//! length (wire length), β·HD with `HU = Nns + Nss` (committed demand plus
//! the GSINO shield reservation), and γ·HOFR once a region would overflow.

use super::{ShieldTerm, Weights};
use crate::{CoreError, Result};
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, GridEdge, RouteSet, RouteTree};
use gsino_steiner::decompose::{decompose_net, Connection};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Min-heap entry for A*.
#[derive(Debug, PartialEq)]
struct OpenEntry {
    /// f = g + h (µm-equivalent cost).
    f: f64,
    region: RegionIdx,
}

impl Eq for OpenEntry {}

impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest f.
        other
            .f
            .partial_cmp(&self.f)
            .expect("finite costs")
            .then_with(|| other.region.cmp(&self.region))
    }
}

/// The sequential congestion-aware A* router.
///
/// # Example
///
/// ```
/// use gsino_core::router::{AstarRouter, ShieldTerm, Weights};
/// use gsino_grid::{Circuit, Net, Point, Rect, RegionGrid, Technology};
///
/// # fn main() -> Result<(), gsino_core::CoreError> {
/// let die = Rect::new(Point::new(0.0, 0.0), Point::new(320.0, 320.0))?;
/// let net = Net::two_pin(0, Point::new(10.0, 10.0), Point::new(300.0, 300.0));
/// let circuit = Circuit::new("t", die, vec![net])?;
/// let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0)?;
/// let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
///     .route(&circuit)?;
/// assert_eq!(routes.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct AstarRouter<'a> {
    grid: &'a RegionGrid,
    weights: Weights,
    shield_term: ShieldTerm,
}

impl<'a> AstarRouter<'a> {
    /// Creates the router.
    pub fn new(grid: &'a RegionGrid, weights: Weights, shield_term: ShieldTerm) -> Self {
        AstarRouter { grid, weights, shield_term }
    }

    /// Routes the circuit, committing demand connection by connection
    /// (longest first, so the hardest connections see the emptiest chip —
    /// the standard sequential-router ordering heuristic).
    ///
    /// # Errors
    ///
    /// [`CoreError::RoutingFailed`] if route assembly fails (internal
    /// invariant; A* itself always finds a path on a connected grid).
    pub fn route(&self, circuit: &Circuit) -> Result<(RouteSet, super::RouterStats)> {
        let mut stats = super::RouterStats::default();
        let mut conns: Vec<Connection> = Vec::new();
        for net in circuit.nets() {
            conns.extend(decompose_net(net));
        }
        stats.connections = conns.len();
        // Longest connections first.
        conns.sort_by(|a, b| {
            b.manhattan()
                .partial_cmp(&a.manhattan())
                .expect("finite lengths")
                .then_with(|| a.net.cmp(&b.net))
        });
        let nregions = self.grid.num_regions() as usize;
        let mut demand = [vec![0u32; nregions], vec![0u32; nregions]];
        let mut per_net: HashMap<NetId, HashSet<GridEdge>> = HashMap::new();
        for c in &conns {
            let t1 = self.grid.region_of(c.from);
            let t2 = self.grid.region_of(c.to);
            if t1 == t2 {
                continue;
            }
            let path = self.astar(t1, t2, &demand);
            // Commit demand and collect edges.
            let entry = per_net.entry(c.net).or_default();
            for w in path.windows(2) {
                let edge = GridEdge::new(self.grid, w[0], w[1])?;
                let d = match edge.dir(self.grid) {
                    Dir::H => 0,
                    Dir::V => 1,
                };
                for r in [w[0], w[1]] {
                    demand[d][r as usize] += 1;
                }
                entry.insert(edge);
            }
        }
        let routes = assemble_trees(self.grid, circuit, &per_net)?;
        Ok((routes, stats))
    }

    /// Congestion-aware A* between two regions.
    fn astar(&self, from: RegionIdx, to: RegionIdx, demand: &[Vec<u32>; 2]) -> Vec<RegionIdx> {
        let mut open = BinaryHeap::new();
        let mut g: HashMap<RegionIdx, f64> = HashMap::new();
        let mut prev: HashMap<RegionIdx, RegionIdx> = HashMap::new();
        g.insert(from, 0.0);
        open.push(OpenEntry { f: self.grid.center_distance(from, to), region: from });
        while let Some(OpenEntry { region, .. }) = open.pop() {
            if region == to {
                break;
            }
            let g_here = g[&region];
            for n in self.grid.neighbors(region).collect::<Vec<_>>() {
                let step = self.step_cost(region, n, demand);
                let tentative = g_here + step;
                if g.get(&n).is_none_or(|&old| tentative < old - 1e-12) {
                    g.insert(n, tentative);
                    prev.insert(n, region);
                    open.push(OpenEntry {
                        f: tentative + self.grid.center_distance(n, to),
                        region: n,
                    });
                }
            }
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[&cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Cost of stepping across one region boundary: length plus the same
    /// density/overflow pressure as Formula (2), scaled into µm.
    fn step_cost(&self, a: RegionIdx, b: RegionIdx, demand: &[Vec<u32>; 2]) -> f64 {
        let edge_dir = {
            let (ax, ay) = self.grid.coords(a);
            let (bx, by) = self.grid.coords(b);
            debug_assert!(ax.abs_diff(bx) + ay.abs_diff(by) == 1);
            if ay == by {
                Dir::H
            } else {
                Dir::V
            }
        };
        let (len, cap, d) = match edge_dir {
            Dir::H => (self.grid.tile_w(), self.grid.hc() as f64, 0),
            Dir::V => (self.grid.tile_h(), self.grid.vc() as f64, 1),
        };
        let mut penalty = 0.0;
        for r in [a, b] {
            let nns = demand[d][r as usize] as f64;
            let used = nns + self.shield_term.shields(nns);
            penalty += self.weights.beta * (used / cap) / 2.0;
            penalty += self.weights.gamma * ((used - cap).max(0.0) / cap) / 2.0;
        }
        // α scales the pure length term, matching Formula (2)'s balance.
        self.weights.alpha * len + penalty * len
    }
}

/// Shared with the ID router: merge per-net edges, spanning-tree from the
/// source region, prune non-pin dangling branches.
pub(crate) fn assemble_trees(
    grid: &RegionGrid,
    circuit: &Circuit,
    per_net: &HashMap<NetId, HashSet<GridEdge>>,
) -> Result<RouteSet> {
    let mut routes = RouteSet::with_capacity(circuit.num_nets());
    for net in circuit.nets() {
        let root = grid.region_of(net.source());
        let pin_regions: HashSet<RegionIdx> =
            net.pins().iter().map(|p| grid.region_of(*p)).collect();
        let edges = match per_net.get(&net.id()) {
            None => {
                routes.insert(RouteTree::trivial(net.id(), root))?;
                continue;
            }
            Some(edges) => {
                let mut sorted: Vec<GridEdge> = edges.iter().copied().collect();
                sorted.sort_unstable();
                sorted
            }
        };
        let mut adjacency: HashMap<RegionIdx, Vec<RegionIdx>> = HashMap::new();
        for e in &edges {
            adjacency.entry(e.a()).or_default().push(e.b());
            adjacency.entry(e.b()).or_default().push(e.a());
        }
        let mut parent: HashMap<RegionIdx, RegionIdx> = HashMap::new();
        parent.insert(root, root);
        let mut queue = VecDeque::from([root]);
        while let Some(r) = queue.pop_front() {
            if let Some(ns) = adjacency.get(&r) {
                for &n in ns {
                    if let Entry::Vacant(v) = parent.entry(n) {
                        v.insert(r);
                        queue.push_back(n);
                    }
                }
            }
        }
        for pr in &pin_regions {
            if !parent.contains_key(pr) {
                return Err(CoreError::RoutingFailed { net: net.id() });
            }
        }
        let mut degree: HashMap<RegionIdx, u32> = HashMap::new();
        let mut tree: std::collections::BTreeSet<GridEdge> = Default::default();
        for (&child, &par) in &parent {
            if child != par {
                tree.insert(GridEdge::new(grid, child, par)?);
                *degree.entry(child).or_insert(0) += 1;
                *degree.entry(par).or_insert(0) += 1;
            }
        }
        loop {
            let leaf_edge = tree
                .iter()
                .find(|e| {
                    let la = degree[&e.a()] == 1 && !pin_regions.contains(&e.a());
                    let lb = degree[&e.b()] == 1 && !pin_regions.contains(&e.b());
                    la || lb
                })
                .copied();
            match leaf_edge {
                Some(e) => {
                    tree.remove(&e);
                    *degree.get_mut(&e.a()).expect("tracked") -= 1;
                    *degree.get_mut(&e.b()).expect("tracked") -= 1;
                }
                None => break,
            }
        }
        routes.insert(RouteTree::new(grid, net.id(), root, tree.into_iter().collect())?)?;
    }
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::tech::Technology;
    use gsino_grid::usage::TrackUsage;

    fn setup(nets: Vec<Net>, side: f64) -> (Circuit, RegionGrid) {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(side, side)).unwrap();
        let circuit = Circuit::new("t", die, nets).unwrap();
        let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
        (circuit, grid)
    }

    #[test]
    fn straight_net_routes_minimally() {
        let (circuit, grid) =
            setup(vec![Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 32.0))], 640.0);
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        assert_eq!(routes.get(0).unwrap().wirelength(&grid), 9.0 * 64.0);
    }

    #[test]
    fn multipin_spans_all_pins() {
        let pins = vec![
            Point::new(32.0, 32.0),
            Point::new(600.0, 32.0),
            Point::new(32.0, 600.0),
        ];
        let (circuit, grid) = setup(vec![Net::new(0, pins.clone())], 640.0);
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        let r = routes.get(0).unwrap();
        let regions: HashSet<_> = r.regions().into_iter().collect();
        for p in &pins {
            assert!(regions.contains(&grid.region_of(*p)));
        }
    }

    #[test]
    fn congestion_cost_spreads_nets() {
        let mut nets = Vec::new();
        for i in 0..40u32 {
            let y = 16.0 + (i % 4) as f64;
            nets.push(Net::two_pin(i, Point::new(16.0, y), Point::new(620.0, y)));
        }
        let (circuit, grid) = setup(nets, 640.0);
        let (routes, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        let usage = TrackUsage::from_routes(&grid, &routes);
        let rows_used = (0..grid.ny())
            .filter(|&cy| (0..grid.nx()).any(|cx| usage.nets(grid.idx(cx, cy), Dir::H) > 0))
            .count();
        assert!(rows_used >= 3, "A* must spread 40 nets beyond capacity-16 rows");
    }

    #[test]
    fn paths_match_id_router_on_sparse_input() {
        // With no congestion both routers find shortest trees, so total
        // wire length should agree.
        let (circuit, grid) = setup(
            vec![
                Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 500.0)),
                Net::two_pin(1, Point::new(100.0, 600.0), Point::new(500.0, 100.0)),
            ],
            640.0,
        );
        let (a, _) = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None)
            .route(&circuit)
            .unwrap();
        let (b, _) =
            super::super::route_all(&grid, &circuit, Weights::default(), ShieldTerm::None)
                .unwrap();
        assert_eq!(a.total_wirelength(&grid), b.total_wirelength(&grid));
    }

    #[test]
    fn deterministic() {
        let (circuit, grid) = setup(
            (0..20u32)
                .map(|i| {
                    let x = 20.0 + (i as f64 * 97.0) % 600.0;
                    let y = 20.0 + (i as f64 * 61.0) % 600.0;
                    Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
                })
                .collect(),
            640.0,
        );
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let (a, _) = router.route(&circuit).unwrap();
        let (b, _) = router.route(&circuit).unwrap();
        assert_eq!(a, b);
    }
}
