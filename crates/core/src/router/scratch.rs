//! Reusable, allocation-free search state for the routing hot paths.
//!
//! Routing grids are small dense index spaces (`RegionIdx` is `cy·nx+cx`),
//! so every per-search map the seed implementation kept in a `HashMap` is
//! held here as a flat array indexed by region, stamped with a search
//! *epoch*: an entry is live only if its stamp equals the current epoch,
//! which makes resetting the whole scratch an O(1) counter bump instead of
//! an O(regions) clear.
//!
//! The same epoch-stamping idiom recurs across the routing core: BFS
//! adjacency in [`super::CorridorScratch`] and the Tarjan/BFS buffers of
//! [`super::connectivity::ConnectivityScratch`] reset the same way, so any
//! of them can be reused across corridors and circuits of any size.
//!
//! The open list is a *monotone bucket heap*: entries are binned by
//! quantized f-cost, and because the Manhattan-center heuristic is
//! consistent (every step costs at least its length term), popped f-costs
//! never decrease, so the bucket cursor only moves forward. Each bucket
//! stores exact `(f, region)` pairs and pops the minimum by scan, so the
//! pop order is *identical* to a comparison heap ordered by
//! `(f, region)` — the property that keeps this implementation
//! byte-for-byte compatible with the seed `BinaryHeap` router (see
//! `router::reference` and the `router_equivalence` suite).

use gsino_grid::region::RegionIdx;

/// Quantized f-cost range of the bucket heap; costlier entries share the
/// last bucket (still exactly ordered — see [`SearchScratch`] internals).
const MAX_BUCKETS: usize = 4096;

/// The search could not reach the target (exhausted the open list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unreachable;

/// Counters one search leaves behind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Heap entries skipped because their region was already expanded
    /// (closed-set / stale-entry skips).
    pub stale_skips: usize,
    /// Regions expanded.
    pub expansions: usize,
}

/// Flat-array A* state, reusable across searches and circuits.
///
/// One scratch serves any number of sequential searches; the parallel
/// Phase I keeps one per worker thread. Arrays grow on demand, so a
/// scratch built for one grid can be reused on a larger one.
#[derive(Debug, Default)]
pub struct SearchScratch {
    epoch: u32,
    /// Stamp for `g`/`prev` validity.
    stamp: Vec<u32>,
    /// Best known cost from the source.
    g: Vec<f64>,
    /// Predecessor on the best known path.
    prev: Vec<RegionIdx>,
    /// Stamp marking regions already expanded (closed set).
    closed: Vec<u32>,
    /// Stamp marking regions whose cost inputs the search read.
    read_stamp: Vec<u32>,
    /// Dense list of regions marked in `read_stamp` this search.
    reads: Vec<RegionIdx>,
    /// Whether to maintain `reads` (only the speculative parallel path
    /// needs it).
    record_reads: bool,
    /// Bucket heap: `(exact f, region)` binned by `floor(f / width)`,
    /// clamped into the last (overflow) bucket past [`MAX_BUCKETS`].
    buckets: Vec<Vec<(f64, RegionIdx)>>,
    /// First possibly non-empty bucket.
    cursor: usize,
    /// Buckets that received entries this search (bounds the
    /// end-of-search sweep to what was actually touched).
    used: Vec<u32>,
    /// Bucket quantum (µm-equivalent cost units).
    width: f64,
    /// Reconstructed path, reused between searches.
    path: Vec<RegionIdx>,
    /// Counters accumulated across searches (reset by the caller).
    pub counters: SearchCounters,
}

impl SearchScratch {
    /// Creates an empty scratch with a default bucket quantum.
    pub fn new() -> Self {
        SearchScratch {
            width: 1.0,
            ..Default::default()
        }
    }

    /// Creates a scratch whose bucket quantum matches the smallest step
    /// cost of the grid (`alpha · min(tile_w, tile_h)`), so each bucket
    /// holds roughly one wavefront ring.
    pub fn with_bucket_width(width: f64) -> Self {
        let width = if width.is_finite() && width > 0.0 {
            width
        } else {
            1.0
        };
        SearchScratch {
            width,
            ..Default::default()
        }
    }

    /// Turns read-set recording on or off (off by default). The parallel
    /// router records reads to validate speculative searches.
    pub fn set_record_reads(&mut self, on: bool) {
        self.record_reads = on;
    }

    /// Regions whose cost inputs the last search read (valid when
    /// recording was on).
    pub fn reads(&self) -> &[RegionIdx] {
        &self.reads
    }

    /// Grows the flat arrays to cover `n` regions.
    fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.g.resize(n, 0.0);
            self.prev.resize(n, 0);
            self.closed.resize(n, 0);
            self.read_stamp.resize(n, 0);
        }
    }

    /// Starts a new search epoch; O(1) unless the u32 epoch wraps.
    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One clear every 2^32 searches keeps stamps unambiguous.
            self.stamp.fill(0);
            self.closed.fill(0);
            self.read_stamp.fill(0);
            self.epoch = 1;
        }
        // Drain only the buckets this search actually touched; a heavily
        // congested search can spread f-costs across a huge range, and
        // sweeping the whole bucket array per search would dwarf the
        // search itself.
        while let Some(b) = self.used.pop() {
            self.buckets[b as usize].clear();
        }
        self.cursor = 0;
        self.reads.clear();
    }

    #[inline]
    fn mark_read(&mut self, r: RegionIdx) {
        if self.record_reads && self.read_stamp[r as usize] != self.epoch {
            self.read_stamp[r as usize] = self.epoch;
            self.reads.push(r);
        }
    }

    #[inline]
    fn push(&mut self, f: f64, region: RegionIdx) {
        // Entries past the quantized range share the last bucket; every
        // bucket is an exact (f, region) min-heap, so ordering stays
        // exact — the overflow bucket just degrades to plain heap cost.
        let b = ((f / self.width) as usize).min(MAX_BUCKETS - 1);
        if b >= self.buckets.len() {
            self.buckets.resize_with(b + 1, Vec::new);
        }
        if self.buckets[b].is_empty() {
            self.used.push(b as u32);
        }
        bucket_sift_up(&mut self.buckets[b], (f, region));
        // A consistent heuristic keeps pops monotone, but floating-point
        // slack is cheap to tolerate: step the cursor back if needed.
        if b < self.cursor {
            self.cursor = b;
        }
    }

    /// Pops the entry with the globally smallest `(f, region)`.
    ///
    /// Buckets partition f-space into disjoint ascending intervals, so the
    /// heap-minimum of the first non-empty bucket is the global minimum —
    /// exactly the order a `BinaryHeap<(f, region)>` min-heap would pop.
    /// Each bucket is itself a small binary min-heap: an exact Manhattan
    /// heuristic on a uniform grid makes every node of the shortest-path
    /// plateau share one f value (one bucket), so the within-bucket
    /// structure has to pop in O(log n), not by scan.
    #[inline]
    fn pop(&mut self) -> Option<(f64, RegionIdx)> {
        while self.cursor < self.buckets.len() {
            let bucket = &mut self.buckets[self.cursor];
            if bucket.is_empty() {
                self.cursor += 1;
                continue;
            }
            return Some(bucket_pop_min(bucket));
        }
        None
    }

    /// Congestion-aware A* from `from` to `to` over a dense region graph.
    ///
    /// `neighbors(r)` yields up to four adjacent regions (west, east,
    /// south, north — the [`gsino_grid::region::RegionGrid::neighbor_array`]
    /// order); `step_cost(a, b)` prices crossing one boundary;
    /// `heuristic(r)` is an admissible, consistent estimate to `to`.
    ///
    /// Semantics match the seed implementation exactly: relaxation uses a
    /// `1e-12` improvement margin, the pop order is `(f, region)`, and the
    /// search stops the first time `to` pops. The closed-set skip is new
    /// but invisible in the output: a re-expanded region would relax with
    /// the same best-known `g`, so every one of its updates is a no-op.
    ///
    /// # Errors
    ///
    /// [`Unreachable`] if the open list drains before `to` pops.
    pub fn astar<N, C, H>(
        &mut self,
        num_regions: usize,
        from: RegionIdx,
        to: RegionIdx,
        neighbors: N,
        step_cost: C,
        heuristic: H,
    ) -> Result<&[RegionIdx], Unreachable>
    where
        N: Fn(RegionIdx) -> [Option<RegionIdx>; 4],
        C: Fn(RegionIdx, RegionIdx) -> f64,
        H: Fn(RegionIdx) -> f64,
    {
        // Region counts are guaranteed to fit u32 by the checked
        // `RegionGrid` constructors; the cast in the unreachable check
        // below relies on it.
        debug_assert!(num_regions <= u32::MAX as usize);
        self.ensure(num_regions);
        self.next_epoch();
        let epoch = self.epoch;
        self.stamp[from as usize] = epoch;
        self.g[from as usize] = 0.0;
        self.prev[from as usize] = from;
        self.push(heuristic(from), from);
        let mut reached = false;
        while let Some((_, region)) = self.pop() {
            if region == to {
                reached = true;
                break;
            }
            if self.closed[region as usize] == epoch {
                self.counters.stale_skips += 1;
                continue;
            }
            self.closed[region as usize] = epoch;
            self.counters.expansions += 1;
            self.mark_read(region);
            let g_here = self.g[region as usize];
            for n in neighbors(region).into_iter().flatten() {
                self.mark_read(n);
                let tentative = g_here + step_cost(region, n);
                let ni = n as usize;
                if self.stamp[ni] != epoch || tentative < self.g[ni] - 1e-12 {
                    self.stamp[ni] = epoch;
                    self.g[ni] = tentative;
                    self.prev[ni] = region;
                    self.push(tentative + heuristic(n), n);
                }
            }
        }
        if !reached && (to >= num_regions as u32 || self.stamp[to as usize] != epoch) {
            return Err(Unreachable);
        }
        self.path.clear();
        let mut cur = to;
        self.path.push(cur);
        while cur != from {
            cur = self.prev[cur as usize];
            self.path.push(cur);
        }
        self.path.reverse();
        Ok(&self.path)
    }
}

/// Min-heap ordering on `(f, region)` — smaller f first, region breaks
/// ties, matching the seed `BinaryHeap`'s reversed `OpenEntry` order.
#[inline]
fn entry_less(a: (f64, RegionIdx), b: (f64, RegionIdx)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Pushes onto a vec-backed binary min-heap.
#[inline]
fn bucket_sift_up(bucket: &mut Vec<(f64, RegionIdx)>, e: (f64, RegionIdx)) {
    bucket.push(e);
    let mut i = bucket.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if entry_less(bucket[i], bucket[p]) {
            bucket.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

/// Pops the minimum from a vec-backed binary min-heap.
#[inline]
fn bucket_pop_min(bucket: &mut Vec<(f64, RegionIdx)>) -> (f64, RegionIdx) {
    let min = bucket.swap_remove(0);
    let len = bucket.len();
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= len {
            break;
        }
        let r = l + 1;
        let smallest = if r < len && entry_less(bucket[r], bucket[l]) {
            r
        } else {
            l
        };
        if entry_less(bucket[smallest], bucket[i]) {
            bucket.swap(i, smallest);
            i = smallest;
        } else {
            break;
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D line graph of `n` regions with unit step cost.
    fn line_neighbors(n: u32) -> impl Fn(RegionIdx) -> [Option<RegionIdx>; 4] {
        move |r| {
            [
                (r > 0).then(|| r - 1),
                (r + 1 < n).then(|| r + 1),
                None,
                None,
            ]
        }
    }

    #[test]
    fn finds_shortest_line_path() {
        let mut s = SearchScratch::new();
        let path = s
            .astar(
                8,
                1,
                6,
                line_neighbors(8),
                |_, _| 1.0,
                |r| (6i64 - r as i64).abs() as f64,
            )
            .unwrap();
        assert_eq!(path, &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn unreachable_target_is_an_error_not_a_panic() {
        let mut s = SearchScratch::new();
        // No neighbors at all: the open list drains immediately.
        let r = s.astar(4, 0, 3, |_| [None; 4], |_, _| 1.0, |_| 0.0);
        assert_eq!(r, Err(Unreachable));
    }

    #[test]
    fn trivial_same_region_search() {
        let mut s = SearchScratch::new();
        let path = s
            .astar(4, 2, 2, line_neighbors(4), |_, _| 1.0, |_| 0.0)
            .unwrap();
        assert_eq!(path, &[2]);
    }

    #[test]
    fn epoch_reset_isolates_consecutive_searches() {
        let mut s = SearchScratch::new();
        for _ in 0..100 {
            let p1 = s
                .astar(8, 0, 7, line_neighbors(8), |_, _| 1.0, |_| 0.0)
                .unwrap()
                .to_vec();
            assert_eq!(p1, vec![0, 1, 2, 3, 4, 5, 6, 7]);
            let p2 = s
                .astar(8, 7, 0, line_neighbors(8), |_, _| 1.0, |_| 0.0)
                .unwrap()
                .to_vec();
            assert_eq!(p2, vec![7, 6, 5, 4, 3, 2, 1, 0]);
        }
    }

    #[test]
    fn read_set_covers_expanded_frontier() {
        let mut s = SearchScratch::new();
        s.set_record_reads(true);
        s.astar(
            8,
            0,
            3,
            line_neighbors(8),
            |_, _| 1.0,
            |r| (3i64 - r as i64).abs() as f64,
        )
        .unwrap();
        let reads = s.reads().to_vec();
        // Every region whose demand a sequential run would price must be
        // in the read set: expanded regions and their neighbors.
        for r in [0u32, 1, 2, 3] {
            assert!(reads.contains(&r), "missing read {r} in {reads:?}");
        }
    }

    #[test]
    fn stale_entries_are_skipped_and_counted() {
        // A diamond where the direct edge is expensive: region 1 gets
        // queued twice (once relaxed worse, once better), so one stale
        // entry must be skipped.
        let neighbors = |r: RegionIdx| -> [Option<RegionIdx>; 4] {
            match r {
                0 => [Some(1), Some(2), None, None],
                1 => [Some(0), Some(3), None, None],
                2 => [Some(0), Some(1), None, None],
                3 => [Some(1), None, None, None],
                _ => [None; 4],
            }
        };
        let cost = |a: RegionIdx, b: RegionIdx| match (a, b) {
            (0, 1) | (1, 0) => 10.0,
            (2, 1) | (1, 2) => 1.0,
            // The goal edge is costly, so region 1's stale first entry
            // (f = 10) pops before the goal (f = 22) and must be skipped.
            (1, 3) | (3, 1) => 20.0,
            _ => 1.0,
        };
        let mut s = SearchScratch::new();
        let path = s.astar(4, 0, 3, neighbors, cost, |_| 0.0).unwrap().to_vec();
        assert_eq!(path, vec![0, 2, 1, 3]);
        assert!(s.counters.stale_skips >= 1);
    }

    #[test]
    fn bucket_order_matches_total_order() {
        // Entries pushed across buckets in scrambled order must pop in
        // ascending (f, region) order.
        let mut s = SearchScratch::with_bucket_width(2.0);
        s.ensure(16);
        s.next_epoch();
        let entries = [
            (7.5, 3u32),
            (0.5, 9),
            (7.5, 1),
            (2.0, 4),
            (0.5, 2),
            (13.0, 0),
        ];
        for (f, r) in entries {
            s.push(f, r);
        }
        let mut popped = Vec::new();
        while let Some(e) = s.pop() {
            popped.push(e);
        }
        let mut sorted = entries.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(popped, sorted);
    }
}
