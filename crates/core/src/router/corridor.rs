//! Per-connection corridor graphs.
//!
//! A two-pin connection is routed inside its *corridor*: the rectangle of
//! regions spanned by its two terminals, expanded by a one-region halo
//! (clamped to the grid). The corridor graph contains every edge between
//! adjacent corridor regions; iterative deletion whittles it down to the
//! final path.

use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::Dir;

/// A rectangular region window with its own local indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct Corridor {
    /// Grid x of the corridor's west column.
    x0: u32,
    /// Grid y of the corridor's south row.
    y0: u32,
    /// Width in regions.
    w: u32,
    /// Height in regions.
    h: u32,
    /// Local edges as (local a, local b, dir); `a < b`.
    edges: Vec<(u16, u16, Dir)>,
    /// Which edges are still alive.
    alive: Vec<bool>,
    /// Number of alive edges.
    alive_count: usize,
    /// Local indices of the two terminals.
    terminals: (u16, u16),
    /// Bumped by every [`Self::kill`]; connectivity caches stamp their
    /// analyses with this (see [`super::connectivity`]).
    revision: u32,
    /// Doubly-linked alive-adjacency: `arc_head[r]` starts region `r`'s
    /// list of alive arcs. Edge `e` owns arcs `2e` (anchored at endpoint
    /// `a`) and `2e + 1` (at endpoint `b`); [`Self::kill`] unlinks both in
    /// O(1), so a traversal from a terminal touches only the alive edges of
    /// its connected component — this is what makes the connectivity
    /// recomputes component-scoped instead of corridor-scoped.
    arc_head: Vec<i32>,
    arc_next: Vec<i32>,
    arc_prev: Vec<i32>,
}

/// Sentinel for "end of arc list".
const NO_ARC: i32 = -1;

impl Corridor {
    /// Builds the corridor for terminals `t1`, `t2` with a `halo` of extra
    /// regions on every side.
    pub fn new(grid: &RegionGrid, t1: RegionIdx, t2: RegionIdx, halo: u32) -> Self {
        let (x1, y1) = grid.coords(t1);
        let (x2, y2) = grid.coords(t2);
        let x0 = x1.min(x2).saturating_sub(halo);
        let y0 = y1.min(y2).saturating_sub(halo);
        let xmax = (x1.max(x2) + halo).min(grid.nx() - 1);
        let ymax = (y1.max(y2) + halo).min(grid.ny() - 1);
        let w = xmax - x0 + 1;
        let h = ymax - y0 + 1;
        let mut edges = Vec::with_capacity((w * h * 2) as usize);
        for ly in 0..h {
            for lx in 0..w {
                let a = (ly * w + lx) as u16;
                if lx + 1 < w {
                    edges.push((a, a + 1, Dir::H));
                }
                if ly + 1 < h {
                    edges.push((a, a + w as u16, Dir::V));
                }
            }
        }
        let alive = vec![true; edges.len()];
        let alive_count = edges.len();
        let lt1 = ((y1 - y0) * w + (x1 - x0)) as u16;
        let lt2 = ((y2 - y0) * w + (x2 - x0)) as u16;
        let mut arc_head = vec![NO_ARC; (w * h) as usize];
        let mut arc_next = vec![NO_ARC; edges.len() * 2];
        let mut arc_prev = vec![NO_ARC; edges.len() * 2];
        for (e, &(a, b, _)) in edges.iter().enumerate() {
            for (slot, r) in [(2 * e, a), (2 * e + 1, b)] {
                let head = arc_head[r as usize];
                arc_next[slot] = head;
                if head != NO_ARC {
                    arc_prev[head as usize] = slot as i32;
                }
                arc_head[r as usize] = slot as i32;
            }
        }
        Corridor {
            x0,
            y0,
            w,
            h,
            edges,
            alive,
            alive_count,
            terminals: (lt1, lt2),
            revision: 0,
            arc_head,
            arc_next,
            arc_prev,
        }
    }

    /// Number of regions in the corridor.
    pub fn num_regions(&self) -> usize {
        (self.w * self.h) as usize
    }

    /// Number of edges (alive or dead).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of alive edges.
    pub fn alive_edges(&self) -> usize {
        self.alive_count
    }

    /// The local terminal indices.
    pub fn terminals(&self) -> (u16, u16) {
        self.terminals
    }

    /// The edge table entry `(local a, local b, dir)`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: usize) -> (u16, u16, Dir) {
        self.edges[e]
    }

    /// Whether edge `e` is alive.
    pub fn is_alive(&self, e: usize) -> bool {
        self.alive[e]
    }

    /// Kills edge `e` (idempotent): unlinks its two arcs from the alive
    /// adjacency in O(1) and bumps the revision.
    pub fn kill(&mut self, e: usize) {
        if self.alive[e] {
            self.alive[e] = false;
            self.alive_count -= 1;
            self.revision += 1;
            let (a, b, _) = self.edges[e];
            for (slot, r) in [(2 * e, a), (2 * e + 1, b)] {
                let (prev, next) = (self.arc_prev[slot], self.arc_next[slot]);
                if next != NO_ARC {
                    self.arc_prev[next as usize] = prev;
                }
                if prev != NO_ARC {
                    self.arc_next[prev as usize] = next;
                } else {
                    self.arc_head[r as usize] = next;
                }
            }
        }
    }

    /// First alive arc anchored at region `r` (`-1` = none). Arcs walk the
    /// *alive* adjacency only: [`Self::kill`] unlinks an edge's two arcs,
    /// so a traversal from a terminal is bounded by that terminal's
    /// connected component, not the corridor.
    #[inline]
    pub fn first_arc(&self, r: u16) -> i32 {
        self.arc_head[r as usize]
    }

    /// Next alive arc after `arc` in the same region's list (`-1` = end).
    #[inline]
    pub fn next_arc(&self, arc: i32) -> i32 {
        self.arc_next[arc as usize]
    }

    /// The edge an arc belongs to.
    #[inline]
    pub fn arc_edge(&self, arc: i32) -> usize {
        arc as usize / 2
    }

    /// The region an arc points *to* (the far endpoint of its edge).
    #[inline]
    pub fn arc_to(&self, arc: i32) -> u16 {
        let (a, b, _) = self.edges[arc as usize / 2];
        if arc & 1 == 0 {
            b
        } else {
            a
        }
    }

    /// Deletion revision: bumped once per effective [`Self::kill`].
    ///
    /// [`super::connectivity::BridgeCache`] stamps its bridge analysis with
    /// this counter and recomputes lazily when it drifts.
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// Converts a local region index to the global [`RegionIdx`].
    pub fn global(&self, grid: &RegionGrid, local: u16) -> RegionIdx {
        let lx = local as u32 % self.w;
        let ly = local as u32 / self.w;
        grid.idx(self.x0 + lx, self.y0 + ly)
    }

    /// Whether the two terminals stay connected if edge `skip` were dead.
    /// BFS over alive edges; `scratch` buffers are reused across calls.
    ///
    /// This is the reference oracle (used by the PR-1 kernel preserved in
    /// [`super::reference`] and by the equivalence suites); the production
    /// ID router answers the same question incrementally through
    /// [`super::connectivity::BridgeCache`]. The question is strictly about
    /// the *terminal pair*: once the terminals are disconnected the answer
    /// is `false` for every `skip` — including a `skip` that is the only
    /// edge touching an isolated region, which changes nothing about the
    /// pair's reachability.
    pub fn connected_without(&self, skip: usize, scratch: &mut CorridorScratch) -> bool {
        let (t1, t2) = self.terminals;
        if t1 == t2 {
            return true;
        }
        scratch.prepare(self.num_regions(), self.edges.len());
        // Build an adjacency pass on the fly: iterate edges once and record
        // neighbour lists in the scratch CSR-ish structure.
        for (e, &(a, b, _)) in self.edges.iter().enumerate() {
            if e != skip && self.alive[e] {
                scratch.push_adj(a, b);
                scratch.push_adj(b, a);
            }
        }
        scratch.bfs(t1, t2)
    }
}

/// Reusable BFS buffers for [`Corridor::connected_without`].
///
/// All per-call state is epoch-stamped the same way the router's
/// `SearchScratch` is: a `visited`/`adj_head` entry is live only when its
/// stamp matches the current epoch, so starting a new connectivity query
/// is an O(1) counter bump instead of an O(regions) clear. One scratch is
/// shared across every corridor of an ID run.
#[derive(Debug, Default)]
pub struct CorridorScratch {
    epoch: u32,
    adj_head: Vec<i32>,
    adj_stamp: Vec<u32>,
    adj_next: Vec<i32>,
    adj_to: Vec<u16>,
    adj_len: usize,
    visited: Vec<u32>,
    queue: Vec<u16>,
}

impl CorridorScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        CorridorScratch::default()
    }

    fn prepare(&mut self, regions: usize, edges: usize) {
        if self.adj_head.len() < regions {
            self.adj_head.resize(regions, -1);
            self.adj_stamp.resize(regions, 0);
            self.visited.resize(regions, 0);
        }
        let cap = edges * 2;
        if self.adj_next.len() < cap {
            self.adj_next.resize(cap, -1);
            self.adj_to.resize(cap, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.adj_stamp.fill(0);
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.adj_len = 0;
        self.queue.clear();
    }

    #[inline]
    fn head_of(&self, r: u16) -> i32 {
        if self.adj_stamp[r as usize] == self.epoch {
            self.adj_head[r as usize]
        } else {
            -1
        }
    }

    fn push_adj(&mut self, from: u16, to: u16) {
        let slot = self.adj_len;
        self.adj_len += 1;
        self.adj_to[slot] = to;
        self.adj_next[slot] = self.head_of(from);
        self.adj_head[from as usize] = slot as i32;
        self.adj_stamp[from as usize] = self.epoch;
    }

    fn bfs(&mut self, from: u16, to: u16) -> bool {
        self.visited[from as usize] = self.epoch;
        self.queue.push(from);
        let mut head = 0;
        while head < self.queue.len() {
            let r = self.queue[head];
            head += 1;
            if r == to {
                return true;
            }
            let mut slot = self.head_of(r);
            while slot >= 0 {
                let n = self.adj_to[slot as usize];
                if self.visited[n as usize] != self.epoch {
                    self.visited[n as usize] = self.epoch;
                    self.queue.push(n);
                }
                slot = self.adj_next[slot as usize];
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::tech::Technology;

    fn grid() -> RegionGrid {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
        RegionGrid::from_die(die, &Technology::itrs_100nm(), 64.0).unwrap()
    }

    #[test]
    fn corridor_covers_bbox_plus_halo() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(2, 2), g.idx(5, 4), 1);
        // bbox 4x3 regions, +1 halo each side → 6x5.
        assert_eq!(c.num_regions(), 30);
        // Edge count: H: 5*5, V: 6*4.
        assert_eq!(c.num_edges(), 49);
        assert_eq!(c.alive_edges(), 49);
    }

    #[test]
    fn halo_clamps_at_grid_border() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 0), 1);
        // x: 0..=2 (clamped west), y: 0..=1 → 3x2 regions.
        assert_eq!(c.num_regions(), 6);
    }

    #[test]
    fn terminals_map_to_globals() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(2, 2), g.idx(5, 4), 1);
        let (t1, t2) = c.terminals();
        assert_eq!(c.global(&g, t1), g.idx(2, 2));
        assert_eq!(c.global(&g, t2), g.idx(5, 4));
    }

    #[test]
    fn connectivity_with_deletions() {
        let g = grid();
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 0), 0);
        // Corridor is 2x1: a single H edge between the terminals.
        assert_eq!(c.num_edges(), 1);
        let mut scratch = CorridorScratch::new();
        assert!(
            !c.connected_without(0, &mut scratch),
            "only edge is a bridge"
        );
        c.kill(0);
        assert_eq!(c.alive_edges(), 0);
    }

    #[test]
    fn redundant_paths_allow_deletion() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 1), 0);
        // 2x2 corridor: 4 edges forming a cycle; any single edge removable.
        assert_eq!(c.num_edges(), 4);
        let mut scratch = CorridorScratch::new();
        for e in 0..4 {
            assert!(c.connected_without(e, &mut scratch), "edge {e}");
        }
    }

    #[test]
    fn kill_is_idempotent() {
        let g = grid();
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(2, 0), 0);
        let before = c.alive_edges();
        c.kill(0);
        c.kill(0);
        assert_eq!(c.alive_edges(), before - 1);
        assert!(!c.is_alive(0));
    }

    #[test]
    fn same_region_terminals() {
        let g = grid();
        let c = Corridor::new(&g, g.idx(3, 3), g.idx(3, 3), 0);
        assert_eq!(c.num_regions(), 1);
        assert_eq!(c.num_edges(), 0);
        let (t1, t2) = c.terminals();
        assert_eq!(t1, t2);
    }

    #[test]
    fn revision_counts_effective_kills_only() {
        let g = grid();
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(2, 0), 0);
        assert_eq!(c.revision(), 0);
        c.kill(0);
        c.kill(0); // idempotent: no second bump
        assert_eq!(c.revision(), 1);
        c.kill(1);
        assert_eq!(c.revision(), 2);
    }

    /// Regression: an already-disconnected terminal pair must report
    /// `false` for *every* `skip`, including when `skip` is the only edge
    /// touching an isolated region (a naive "is `skip` a separating
    /// bridge?" rewrite answers `true` here, because `skip` separates
    /// nothing that is not already separated).
    #[test]
    fn disconnected_corridor_is_never_connected_without() {
        let g = grid();
        // 3x1 corridor: regions 0 -e0- 1 -e1- 2, terminals at the ends.
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(2, 0), 0);
        assert_eq!(c.num_edges(), 2);
        let mut scratch = CorridorScratch::new();
        c.kill(1);
        // Region 2 (terminal t2) is now isolated; e1 is the only edge that
        // touched it and it is dead.
        for skip in 0..2 {
            assert!(
                !c.connected_without(skip, &mut scratch),
                "skip {skip} on a disconnected pair must be false"
            );
        }
        // Same shape with the isolated region off the terminal path: pair
        // stays connected, the dead edge changes nothing.
        let mut c2 = Corridor::new(&g, g.idx(0, 0), g.idx(1, 0), 0);
        assert_eq!(c2.num_edges(), 1);
        assert!(
            !c2.connected_without(0, &mut scratch),
            "only edge is a bridge"
        );
        c2.kill(0);
        assert!(!c2.connected_without(0, &mut scratch));
    }

    /// The arc lists enumerate exactly the alive incident edges and shed
    /// killed edges in O(1).
    #[test]
    fn arc_lists_track_alive_incidence() {
        let g = grid();
        let mut c = Corridor::new(&g, g.idx(0, 0), g.idx(1, 1), 0);
        let walk = |c: &Corridor, r: u16| {
            let mut edges = Vec::new();
            let mut arc = c.first_arc(r);
            while arc >= 0 {
                edges.push(c.arc_edge(arc));
                assert_ne!(c.arc_to(arc), r, "arc points to the far endpoint");
                arc = c.next_arc(arc);
            }
            edges.sort_unstable();
            edges
        };
        // Local region 0 (corner) touches one H and one V edge.
        let before = walk(&c, 0);
        assert_eq!(before.len(), 2);
        c.kill(before[0]);
        let after = walk(&c, 0);
        assert_eq!(after, vec![before[1]]);
        c.kill(before[1]);
        assert!(walk(&c, 0).is_empty());
    }
}
