//! Phase I global routers: iterative deletion and sequential A*.
//!
//! Paper §3.1 and Fig. 1, following Cong–Preas: construct a connection
//! graph per net over the routing regions, then *iteratively delete the
//! maximum-weight edge* whose removal keeps the net connected, until every
//! graph is a tree. Because all nets' edges compete in one pool, the
//! result is independent of any net ordering — the property the paper
//! chose the ID algorithm for. The sequential A* router ([`AstarRouter`])
//! is the paper's §5 future-work alternative: faster, order-dependent.
//!
//! Multi-pin nets are decomposed into two-pin connections along their
//! Steiner topology first (see [`gsino_steiner::decompose`]); each
//! connection's graph is its corridor — the bounding box of its endpoints
//! plus a one-region halo.
//!
//! # The flat-array search core
//!
//! Routing regions live in a small dense index space (`RegionIdx` is
//! `cy·nx + cx`), so all per-search state is kept in flat arrays indexed
//! by region rather than hash maps — the same layout STAIRoute and the
//! multicommodity-flow routers use. The pieces:
//!
//! * [`SearchScratch`] — reusable A* state: `g`/`prev` arrays stamped with
//!   a search *epoch* (reset is an O(1) counter bump; an entry is live
//!   only if its stamp equals the current epoch) plus a monotone bucket
//!   heap binned by quantized f-cost whose pop order is exactly
//!   `(f, region)` — byte-compatible with the seed's `BinaryHeap`.
//! * `assemble` — shared route-tree assembly over epoch-stamped CSR
//!   adjacency with an O(E) worklist pruner (the seed rebuilt `HashMap`s
//!   per net and pruned leaves in O(E²)).
//! * [`gsino_grid::region::RegionGrid::neighbor_array`] — fixed
//!   `[Option<RegionIdx>; 4]` neighbor lookup, no boxed iterators in the
//!   expansion loop.
//! * [`connectivity`] — incremental corridor connectivity for the ID
//!   router: one Tarjan low-link pass per corridor revision caches every
//!   bridge, so the per-deletion "do the terminals survive?" query is an
//!   O(1) lookup (plus an intact-witness-path shortcut that answers most
//!   stale queries without recomputing). See
//!   `crates/core/src/router/README.md` for the epoch/revision contract.
//! * [`mod@reference`] — the seed A* implementation and the PR-1 BFS-based ID
//!   implementation, kept verbatim so tests and benches can prove
//!   equivalence and measure the speedup.
//!
//! # Parallel Phase I and the commit-ordering rule
//!
//! [`AstarRouter::route_with_threads`] routes batches of connections
//! speculatively across worker threads against a frozen demand snapshot,
//! then **commits strictly in the sequential order**. Each speculative
//! search records every region whose demand it read; at commit time the
//! path is accepted only if none of those regions was touched by an
//! earlier commit in the batch, otherwise the connection is re-routed on
//! the committing thread against current demand. Because a deterministic
//! search that reads identical inputs takes identical steps, an accepted
//! speculative path is exactly what the sequential router would have
//! produced — so parallel output equals sequential output bit for bit,
//! for any thread count.

mod assemble;
mod astar;
pub mod connectivity;
mod corridor;
mod id;
pub mod reference;
mod scratch;

pub use astar::AstarRouter;
pub use connectivity::{BridgeCache, ConnectivityCounters, ConnectivityScratch};
pub use corridor::{Corridor, CorridorScratch};
pub use id::{route_all, IdRouter, RouterStats};
pub use scratch::{SearchCounters, SearchScratch, Unreachable};

use gsino_sino::nss::NssModel;
use serde::{Deserialize, Serialize};

/// The weight constants of Formula (2): `w = α·f(WL) + β·HD + γ·HOFR`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Wire-length coefficient (paper: 2).
    pub alpha: f64,
    /// Density coefficient (paper: 1).
    pub beta: f64,
    /// Overflow coefficient (paper: 50, "much larger than α and β so that
    /// virtually no overflow is allowed").
    pub gamma: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            alpha: 2.0,
            beta: 1.0,
            gamma: 50.0,
        }
    }
}

/// Shield-awareness of the router's utilization term.
///
/// GSINO's Phase I includes the estimated shield count `Nss` (Formula (3))
/// in the utilization `HU = Nns + Nss`; the ID+NO and iSINO baselines omit
/// it (paper §4: "no shielding area reservation or minimization").
#[derive(Debug, Clone, PartialEq)]
pub enum ShieldTerm {
    /// Baselines: `HU = Nns`.
    None,
    /// GSINO: `HU = Nns + Nss(Nns, S)` with local sensitivities
    /// approximated by the global sensitivity `rate` during routing.
    Estimated {
        /// The fitted Formula (3) model.
        model: NssModel,
        /// The circuit's sensitivity rate (the expected `Sᵢ`).
        rate: f64,
    },
}

impl ShieldTerm {
    /// Estimated shields for a region currently holding `nns` (expected)
    /// segments.
    pub fn shields(&self, nns: f64) -> f64 {
        match self {
            ShieldTerm::None => 0.0,
            ShieldTerm::Estimated { model, rate } => {
                model.estimate_continuous(nns, nns * rate, nns * rate * rate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_match_paper() {
        let w = Weights::default();
        assert_eq!((w.alpha, w.beta, w.gamma), (2.0, 1.0, 50.0));
    }

    #[test]
    fn shield_term_none_is_zero() {
        assert_eq!(ShieldTerm::None.shields(100.0), 0.0);
    }

    #[test]
    fn shield_term_estimates_grow_with_occupancy() {
        let model = NssModel::from_coefficients([0.5, 0.0, 0.5, 0.0, 0.05, 0.0], 0.5);
        let term = ShieldTerm::Estimated { model, rate: 0.5 };
        assert!(term.shields(20.0) > term.shields(5.0));
        assert_eq!(term.shields(0.0), 0.0);
        assert_eq!(term.shields(1.5), 0.0);
    }
}
