//! The iterative-deletion (ID) global router.
//!
//! Paper §3.1 and Fig. 1, following Cong–Preas: construct a connection
//! graph per net over the routing regions, then *iteratively delete the
//! maximum-weight edge* whose removal keeps the net connected, until every
//! graph is a tree. Because all nets' edges compete in one pool, the
//! result is independent of any net ordering — the property the paper
//! chose the ID algorithm for.
//!
//! Multi-pin nets are decomposed into two-pin connections along their
//! Steiner topology first (see [`gsino_steiner::decompose`]); each
//! connection's graph is its corridor — the bounding box of its endpoints
//! plus a one-region halo.

mod astar;
mod corridor;
mod id;

pub use astar::AstarRouter;
pub use corridor::Corridor;
pub use id::{route_all, IdRouter, RouterStats};

use gsino_sino::nss::NssModel;

/// The weight constants of Formula (2): `w = α·f(WL) + β·HD + γ·HOFR`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Wire-length coefficient (paper: 2).
    pub alpha: f64,
    /// Density coefficient (paper: 1).
    pub beta: f64,
    /// Overflow coefficient (paper: 50, "much larger than α and β so that
    /// virtually no overflow is allowed").
    pub gamma: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights { alpha: 2.0, beta: 1.0, gamma: 50.0 }
    }
}

/// Shield-awareness of the router's utilization term.
///
/// GSINO's Phase I includes the estimated shield count `Nss` (Formula (3))
/// in the utilization `HU = Nns + Nss`; the ID+NO and iSINO baselines omit
/// it (paper §4: "no shielding area reservation or minimization").
#[derive(Debug, Clone, PartialEq)]
pub enum ShieldTerm {
    /// Baselines: `HU = Nns`.
    None,
    /// GSINO: `HU = Nns + Nss(Nns, S)` with local sensitivities
    /// approximated by the global sensitivity `rate` during routing.
    Estimated {
        /// The fitted Formula (3) model.
        model: NssModel,
        /// The circuit's sensitivity rate (the expected `Sᵢ`).
        rate: f64,
    },
}

impl ShieldTerm {
    /// Estimated shields for a region currently holding `nns` (expected)
    /// segments.
    pub fn shields(&self, nns: f64) -> f64 {
        match self {
            ShieldTerm::None => 0.0,
            ShieldTerm::Estimated { model, rate } => {
                model.estimate_continuous(nns, nns * rate, nns * rate * rate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_match_paper() {
        let w = Weights::default();
        assert_eq!((w.alpha, w.beta, w.gamma), (2.0, 1.0, 50.0));
    }

    #[test]
    fn shield_term_none_is_zero() {
        assert_eq!(ShieldTerm::None.shields(100.0), 0.0);
    }

    #[test]
    fn shield_term_estimates_grow_with_occupancy() {
        let model = NssModel::from_coefficients([0.5, 0.0, 0.5, 0.0, 0.05, 0.0], 0.5);
        let term = ShieldTerm::Estimated { model, rate: 0.5 };
        assert!(term.shields(20.0) > term.shields(5.0));
        assert_eq!(term.shields(0.0), 0.0);
        assert_eq!(term.shields(1.5), 0.0);
    }
}
