//! Fault injection for exercising the session's divergence defenses.
//!
//! A [`FaultPlan`] corrupts one piece of the session's cached replay state
//! — exactly the caches the sampled oracle audits — so tests and benches
//! can prove the detect → quarantine → degraded-replay ladder end to end.
//! Injection targets the *persisted* artifacts (routes, budgets, region
//! solutions), mirroring what a wild pointer or a buggy incremental engine
//! would clobber in production.

use super::SessionState;
use crate::{CoreError, Result};
use gsino_grid::route::{Dir, RouteTree};

/// Which cached artifact a [`FaultPlan`] corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrites one cached per-segment coupling `k` in a Phase II region
    /// solution — the "poisoned `k_eff`" scenario.
    PoisonKeff,
    /// Replaces one net's routing tree with a stale trivial stub, the
    /// Phase I analogue of a rotted bridge fact: the persisted route no
    /// longer matches what every downstream cache was derived from.
    StaleRoute,
    /// Corrupts one of a net's cached `Kth` budget entries — an LSK term
    /// that no longer matches the noise table.
    CorruptBudget,
}

/// A single planned corruption of the session's cached state.
///
/// Targets are optional: `None` picks the first eligible victim in
/// deterministic (sorted) order, so tests stay reproducible without
/// hard-coding ids. Explicit targets are validated against the live
/// snapshot and rejected with [`CoreError::UnknownId`] when stale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// What to corrupt.
    pub kind: FaultKind,
    /// The victim net, for net-addressed kinds.
    pub net: Option<u32>,
    /// The victim `(region, dir)`, for region-addressed kinds.
    pub region: Option<(u32, Dir)>,
}

impl FaultPlan {
    /// A plan of the given kind with no explicit target.
    pub fn new(kind: FaultKind) -> Self {
        FaultPlan {
            kind,
            net: None,
            region: None,
        }
    }
}

/// Applies the corruption to the session's cached state.
pub(super) fn inject(state: &mut SessionState, plan: &FaultPlan) -> Result<()> {
    match plan.kind {
        FaultKind::PoisonKeff => {
            let (r, dir) = resolve_region(state, plan)?;
            let sol = state
                .sino0
                .solution_mut(r, dir)
                .ok_or(CoreError::UnknownId {
                    kind: "region",
                    id: r as u64,
                })?;
            match sol.k.first_mut() {
                Some(k) => *k = *k * 3.0 + 1.0,
                None => {
                    return Err(CoreError::UnknownId {
                        kind: "region",
                        id: r as u64,
                    })
                }
            }
        }
        FaultKind::StaleRoute => {
            let net = resolve_net(state, plan)?;
            let source = state
                .circuit
                .net(net)
                .ok_or(CoreError::UnknownId {
                    kind: "net",
                    id: net as u64,
                })?
                .source();
            let root = state.grid.region_of(source);
            state.routes.replace(RouteTree::trivial(net, root));
        }
        FaultKind::CorruptBudget => {
            let net = resolve_net(state, plan)?;
            let entries = state.budgets0.net_entries(net);
            let ((n, r, d), v) = entries.first().ok_or(CoreError::UnknownId {
                kind: "net",
                id: net as u64,
            })?;
            state.budgets0.set(*n, *r, *d, v * 0.37 + 1e-3);
        }
    }
    Ok(())
}

/// The explicit region target, validated, or the first solved region.
fn resolve_region(state: &SessionState, plan: &FaultPlan) -> Result<(u32, Dir)> {
    match plan.region {
        Some((r, dir)) => {
            if state.sino0.solution(r, dir).is_none() {
                return Err(CoreError::UnknownId {
                    kind: "region",
                    id: r as u64,
                });
            }
            Ok((r, dir))
        }
        None => state
            .sino0
            .keys()
            .first()
            .copied()
            .ok_or(CoreError::BadConfig {
                reason: "no solved regions to corrupt".into(),
            }),
    }
}

/// The explicit net target, validated, or the first routed net.
fn resolve_net(state: &SessionState, plan: &FaultPlan) -> Result<u32> {
    match plan.net {
        Some(net) => {
            if state.circuit.net(net).is_none() || state.routes.get(net).is_none() {
                return Err(CoreError::UnknownId {
                    kind: "net",
                    id: net as u64,
                });
            }
            Ok(net)
        }
        None => state
            .routes
            .iter()
            .map(|r| r.net())
            .min()
            .ok_or(CoreError::BadConfig {
                reason: "no routed nets to corrupt".into(),
            }),
    }
}
