//! Typed ECO edits and their validation against the live snapshot.
//!
//! Every edit is validated **at apply time** against the transaction's
//! working copy of the circuit and configuration (the live snapshot plus
//! any edits already applied in the open transaction), so a stale id
//! surfaces as a typed [`CoreError::UnknownId`] before the commit starts
//! replaying anything — never as a panic inside a phase driver.

use crate::pipeline::GsinoConfig;
use crate::router::Weights;
use crate::{CoreError, Result};
use gsino_grid::net::{Circuit, CircuitEdit};
use gsino_grid::GridError;
use serde::{Deserialize, Serialize};

/// One typed edit an [`EcoSession`](super::EcoSession) transaction can
/// carry.
#[derive(Debug, Clone, PartialEq)]
pub enum EcoEdit {
    /// A netlist change (add / remove / re-pin a net). Topology edits
    /// re-run Phase I — iterative deletion couples every net through the
    /// shared demand field, so routes have no per-net incremental form —
    /// but Phase II replays only the regions whose occupants or budgets
    /// actually changed.
    Circuit(CircuitEdit),
    /// Tightens (or loosens) one sink's noise constraint: the session
    /// config gains a `(net, sink, vth)` override. Budget-only — routes
    /// are untouched; the edited net's budget entries are recomputed and
    /// only regions whose `Kth` changed are re-solved.
    TightenVth {
        /// The net owning the sink.
        net: u32,
        /// The sink's index within [`gsino_grid::net::Net::sinks`].
        sink: u32,
        /// The new constraint (V), `0 < vth < Vdd`.
        vth: f64,
    },
    /// Removes any constraint override on one sink, restoring the global
    /// `vth`. Budget-only, like [`EcoEdit::TightenVth`].
    RelaxVth {
        /// The net owning the sink.
        net: u32,
        /// The sink's index.
        sink: u32,
    },
    /// Resizes the routing-region tiles. The grid is uniform (it depends
    /// only on the die and tile size), so this is the "resize a region"
    /// edit at the only granularity the substrate supports — and it
    /// invalidates every corridor, so it replays the full flow.
    Retile {
        /// The new nominal tile size (µm).
        tile_um: f64,
    },
    /// Replaces the Formula (2) router weight constants. Re-weighting
    /// changes every deletion decision, so it replays the full flow.
    Reweight {
        /// The new weight constants.
        weights: Weights,
    },
}

/// How much of the flow an edit invalidates — the session's replay
/// ladder, from cheapest to most expensive. A transaction replays at the
/// **max** class of its edits, which is also the routing service's
/// batching compatibility key: requests whose edits share a class
/// coalesce into one transactional replay without escalating anyone's
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EditClass {
    /// Routes stand; re-budget the edited nets and re-solve changed
    /// regions.
    BudgetOnly,
    /// Re-run Phase I on the edited netlist; reuse unchanged Phase II
    /// regions.
    Phase1,
    /// Everything is invalidated; rebuild from scratch.
    FullRebuild,
}

impl EcoEdit {
    /// The replay rung this edit demands, derivable from the variant alone
    /// (validation happens later, at apply time). The routing service uses
    /// this as its batching key: only same-class requests coalesce.
    pub fn class(&self) -> EditClass {
        match self {
            EcoEdit::Circuit(_) => EditClass::Phase1,
            EcoEdit::TightenVth { .. } | EcoEdit::RelaxVth { .. } => EditClass::BudgetOnly,
            EcoEdit::Retile { .. } | EcoEdit::Reweight { .. } => EditClass::FullRebuild,
        }
    }

    /// Validates this edit against (and applies it to) the transaction's
    /// working circuit/config, returning how much replay it demands.
    ///
    /// On error the working copies are left exactly as they were —
    /// [`Circuit::apply_edit`] validates before mutating, and the config
    /// paths below mutate only after their checks pass — so a rejected
    /// edit never poisons the transaction.
    pub(super) fn apply_to(
        &self,
        circuit: &mut Circuit,
        config: &mut GsinoConfig,
    ) -> Result<EditClass> {
        match self {
            EcoEdit::Circuit(edit) => {
                circuit.apply_edit(edit.clone()).map_err(grid_edit_error)?;
                Ok(EditClass::Phase1)
            }
            EcoEdit::TightenVth { net, sink, vth } => {
                validate_sink(circuit, *net, *sink)?;
                if !(*vth > 0.0 && *vth < config.tech.vdd) {
                    return Err(CoreError::BadConfig {
                        reason: format!("vth override {vth} outside (0, Vdd)"),
                    });
                }
                config
                    .vth_overrides
                    .retain(|(n, s, _)| !(n == net && s == sink));
                config.vth_overrides.push((*net, *sink, *vth));
                Ok(EditClass::BudgetOnly)
            }
            EcoEdit::RelaxVth { net, sink } => {
                validate_sink(circuit, *net, *sink)?;
                config
                    .vth_overrides
                    .retain(|(n, s, _)| !(n == net && s == sink));
                Ok(EditClass::BudgetOnly)
            }
            EcoEdit::Retile { tile_um } => {
                if !(tile_um.is_finite() && *tile_um > 0.0) {
                    return Err(CoreError::BadConfig {
                        reason: format!("tile size {tile_um}"),
                    });
                }
                config.tile_um = *tile_um;
                Ok(EditClass::FullRebuild)
            }
            EcoEdit::Reweight { weights } => {
                if ![weights.alpha, weights.beta, weights.gamma]
                    .iter()
                    .all(|w| w.is_finite())
                {
                    return Err(CoreError::BadConfig {
                        reason: "router weights must be finite".into(),
                    });
                }
                config.weights = *weights;
                Ok(EditClass::FullRebuild)
            }
        }
    }

    /// The net whose budgets a [`EditClass::BudgetOnly`] edit touches.
    pub(super) fn budget_net(&self) -> Option<u32> {
        match self {
            EcoEdit::TightenVth { net, .. } | EcoEdit::RelaxVth { net, .. } => Some(*net),
            _ => None,
        }
    }
}

/// Maps netlist-edit failures onto the session's typed errors: stale ids
/// become [`CoreError::UnknownId`], structural rejections stay as
/// configuration errors.
fn grid_edit_error(e: GridError) -> CoreError {
    match e {
        GridError::UnknownNet { net } => CoreError::UnknownId {
            kind: "net",
            id: net as u64,
        },
        other => CoreError::BadConfig {
            reason: format!("netlist edit rejected: {other}"),
        },
    }
}

/// `UnknownId` unless `net` exists and `sink` indexes one of its sinks.
fn validate_sink(circuit: &Circuit, net: u32, sink: u32) -> Result<()> {
    let n = circuit.net(net).ok_or(CoreError::UnknownId {
        kind: "net",
        id: net as u64,
    })?;
    if (sink as usize) >= n.sinks().len() {
        return Err(CoreError::UnknownId {
            kind: "sink",
            id: sink as u64,
        });
    }
    Ok(())
}
