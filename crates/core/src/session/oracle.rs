//! The sampled runtime oracle: defense in depth for incremental replay.
//!
//! The session's invariant is that its cached replay state — routes,
//! pre-refine budgets, Phase II region solutions — is bit-identical to
//! what a from-scratch run on `(circuit, config)` would produce. The
//! oracle spot-checks that invariant two ways:
//!
//! * **Pre-flight audit** (every commit, before replaying): a sampled
//!   fraction of regions is re-derived from first principles — occupants
//!   recomputed from the routes, the SINO instance rebuilt from the
//!   budgets, the region re-solved with the preserved **reference**
//!   engine — and a sampled fraction of nets has its budget entries
//!   recomputed through the noise table. Any mismatch is a divergence.
//! * **Patched check** (after replaying): a sampled fraction of the
//!   regions the replay just patched is re-solved with the reference
//!   engine and compared bitwise.
//!
//! Because every recompute goes through the same public helpers the flow
//! itself uses ([`build_instance`], [`solve_instance`],
//! [`net_budget_entries`]) but with the *reference* solver, the oracle
//! cross-checks the incremental engines against their preserved twins at
//! runtime — the PR-2/3/4 equivalence discipline, carried into
//! production. Recompute failures (a corrupted budget can make instance
//! construction itself error) are reported as divergences, not propagated
//! as hard errors: the session's job is to recover.

use super::{SessionState, SessionStats};
use crate::budget::{net_budget_entries, LengthModel};
use crate::phase2::{assignments, build_instance, solve_instance, RegionMode, SinoEngine};
use gsino_grid::region::RegionIdx;
use gsino_grid::route::Dir;
use gsino_sino::delta::DeltaEval;
use rand::rngs::StdRng;
use rand::Rng;

/// How aggressively the runtime oracle samples.
///
/// Under `debug_assertions` both fractions are forced to 1.0 — debug and
/// CI builds audit everything — mirroring how the incremental engines'
/// debug oracles work. Release builds pay only the configured fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Fraction of replay-patched regions re-solved after each commit.
    pub patched_sample: f64,
    /// Fraction of regions/nets audited before each commit.
    pub audit_sample: f64,
    /// Seed for the deterministic sampling stream (mixed with the commit
    /// counter, so every commit samples a different deterministic subset).
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            patched_sample: 0.25,
            audit_sample: 0.10,
            seed: 0xEC0_5E55,
        }
    }
}

impl OracleConfig {
    /// A configuration that audits everything — what the fault-injection
    /// tests and the CI release leg run with.
    pub fn full() -> Self {
        OracleConfig {
            patched_sample: 1.0,
            audit_sample: 1.0,
            ..OracleConfig::default()
        }
    }

    pub(super) fn effective_patched(&self) -> f64 {
        if cfg!(debug_assertions) {
            1.0
        } else {
            self.patched_sample.clamp(0.0, 1.0)
        }
    }

    pub(super) fn effective_audit(&self) -> f64 {
        if cfg!(debug_assertions) {
            1.0
        } else {
            self.audit_sample.clamp(0.0, 1.0)
        }
    }
}

/// Audits the cached replay state against first principles. Returns a
/// human-readable divergence description, or `None` if every sampled
/// check passed.
pub(super) fn audit(
    state: &SessionState,
    sample: f64,
    rng: &mut StdRng,
    stats: &mut SessionStats,
) -> Option<String> {
    // Membership is cheap enough to check globally: the solved key set
    // must equal the occupied key set, and the occupant lists must match.
    // This is what catches a stale route even at low sampling rates.
    let expected = assignments(&state.grid, &state.routes);
    let solved_keys = state.sino0.keys();
    if expected.len() != solved_keys.len() {
        return Some(format!(
            "solved region count {} != occupied region count {}",
            solved_keys.len(),
            expected.len()
        ));
    }
    for ((r, dir), nets) in &expected {
        let Some(sol) = state.sino0.solution(*r, *dir) else {
            return Some(format!("occupied region {r} {dir:?} has no solution"));
        };
        if &sol.nets != nets {
            return Some(format!("occupant list diverged at region {r} {dir:?}"));
        }
    }

    // Sampled deep checks: rebuild + reference-solve each sampled region.
    for (r, dir) in solved_keys {
        if !rng.gen_bool(sample) {
            continue;
        }
        stats.oracle_checks += 1;
        // invariant: `keys()` returned this key and nothing mutates the
        // solution set while the audit holds `&SessionState`.
        let sol = state.sino0.solution(r, dir).expect("key just enumerated");
        if let Some(reason) = check_solution(state, r, dir, sol) {
            return Some(reason);
        }
    }

    // Sampled budget recompute per net.
    for net in state.circuit.nets() {
        if !rng.gen_bool(sample) {
            continue;
        }
        stats.oracle_checks += 1;
        let stored = state.budgets0.net_entries(net.id());
        let recomputed = match state.routes.get(net.id()) {
            None => Vec::new(),
            Some(route) => {
                match net_budget_entries(
                    net,
                    &state.grid,
                    route,
                    &state.table,
                    &|n, s| state.config.vth_for(n, s),
                    LengthModel::Manhattan,
                ) {
                    Ok(v) => v,
                    Err(e) => {
                        return Some(format!("budget recompute failed for net {}: {e}", net.id()))
                    }
                }
            }
        };
        if stored != recomputed {
            return Some(format!("budget entries diverged for net {}", net.id()));
        }
    }
    None
}

/// Re-solves a sampled fraction of the regions a replay just patched and
/// compares bitwise. Returns a divergence description, or `None`.
pub(super) fn check_patched(
    state: &SessionState,
    patched: &[(RegionIdx, Dir)],
    sample: f64,
    rng: &mut StdRng,
    stats: &mut SessionStats,
) -> Option<String> {
    for &(r, dir) in patched {
        if !rng.gen_bool(sample) {
            continue;
        }
        // A patched key may have been dropped entirely (its last occupant
        // was removed); nothing to check then.
        let Some(sol) = state.sino0.solution(r, dir) else {
            continue;
        };
        stats.oracle_checks += 1;
        if let Some(reason) = check_solution(state, r, dir, sol) {
            return Some(reason);
        }
    }
    None
}

/// One region's deep check: instance rebuilt from the budgets, then
/// re-solved with the **reference** engine; instance, layout and
/// couplings must all match bitwise.
fn check_solution(
    state: &SessionState,
    r: RegionIdx,
    dir: Dir,
    sol: &crate::phase2::RegionSolution,
) -> Option<String> {
    let rebuilt = match build_instance(
        (r, dir),
        sol.nets.clone(),
        &state.budgets0,
        &state.config.sensitivity,
    ) {
        Ok(inst) => inst,
        Err(e) => {
            return Some(format!(
                "instance rebuild failed at region {r} {dir:?}: {e}"
            ))
        }
    };
    if rebuilt.instance != sol.instance {
        return Some(format!("instance diverged at region {r} {dir:?}"));
    }
    let mut scratch = DeltaEval::new();
    let (_, reference) = match solve_instance(
        rebuilt,
        state.config.solver,
        RegionMode::Sino,
        SinoEngine::Reference,
        &mut scratch,
    ) {
        Ok(solved) => solved,
        Err(e) => return Some(format!("reference solve failed at region {r} {dir:?}: {e}")),
    };
    if reference.layout != sol.layout {
        return Some(format!("layout diverged at region {r} {dir:?}"));
    }
    if reference.k != sol.k {
        return Some(format!("couplings diverged at region {r} {dir:?}"));
    }
    None
}
