//! Fault-tolerant ECO sessions: transactional edit replay over a routed
//! snapshot, with divergence self-checks and graceful degradation.
//!
//! An engineering change order (ECO) arrives after the expensive GSINO
//! flow has already converged: a net is added or re-pinned, a sink's
//! noise budget tightens, the router's cost weights are re-tuned. Instead
//! of re-running the three-phase flow from scratch, an [`EcoSession`]
//! holds the full routed snapshot — routes, pre-refine budgets, Phase II
//! region solutions, post-refine state — and replays each batch of typed
//! [`EcoEdit`]s through the narrowest phase slice that edit class
//! invalidates.
//!
//! # Transaction lifecycle
//!
//! ```text
//! begin() ──▶ apply(edit)* ──▶ commit()            (or rollback())
//!                 │                 │
//!                 │ id validation   │ pre-flight oracle audit
//!                 │ (UnknownId)     │ replay affected phases
//!                 │                 │ post-replay patched check
//!                 ▼                 ▼
//!             rejected edit     new snapshot, or bit-identical
//!             leaves the txn    pre-edit state on any error
//!             unchanged
//! ```
//!
//! Commits are transactional in the strongest sense: the replay builds a
//! complete candidate state **aside** and installs it only after every
//! phase driver and oracle check succeeds, so a canceled deadline
//! ([`CancelToken`]), a solver error, or a rejected edit leaves the
//! session bit-identical to its pre-edit state — the PR-4 rollback
//! discipline, applied at session scope.
//!
//! # Replay ladder
//!
//! * **Budget-only** ([`EcoEdit::TightenVth`] / [`EcoEdit::RelaxVth`]):
//!   routes stand; the edited net's budget entries are recomputed through
//!   the noise table and only regions whose `Kth` changed are re-solved.
//! * **Topology** ([`EcoEdit::Circuit`]): iterative deletion couples all
//!   nets through the shared demand field, so Phase I re-runs on the
//!   edited netlist — but Phase II solutions are reused bitwise for every
//!   region whose occupants and budgets are unchanged.
//! * **Full rebuild** ([`EcoEdit::Retile`] / [`EcoEdit::Reweight`]):
//!   everything is invalidated; the flow re-runs from scratch.
//!
//! Phase III always re-runs on clones of the pre-refine state: refinement
//! is deterministic, so its output is bit-identical to a from-scratch run
//! whenever its inputs are — which is exactly the invariant the session
//! maintains.
//!
//! # Oracle sampling contract
//!
//! Incremental replay is fast but trusts its caches. Defense in depth
//! comes from the sampled runtime oracle ([`OracleConfig`]): before each
//! commit a sampled fraction of regions and nets is re-derived from first
//! principles and re-solved with the preserved **reference** engines;
//! after each replay a sampled fraction of the freshly patched regions is
//! re-checked the same way. Under `debug_assertions` both fractions are
//! forced to 1.0. A mismatch is a **divergence**: the session quarantines
//! the suspect cache, counts it in [`SessionStats`], records the reason
//! ([`EcoSession::last_divergence`]), and **gracefully degrades** by
//! re-running the flow from scratch — correctness recovered at the price
//! of one full replay, never a silent wrong answer.
//!
//! [`FaultPlan`] exists to prove that ladder end to end: tests inject a
//! poisoned coupling, a stale route, or a corrupted budget term, and the
//! suite asserts the oracle detects it and the degraded replay converges
//! to the same bits as a from-scratch run.
//!
//! # Example
//!
//! ```
//! use gsino_core::pipeline::GsinoConfig;
//! use gsino_core::session::{EcoEdit, EcoSession};
//! use gsino_grid::{Circuit, Net, Point, Rect};
//! use gsino_sino::nss::NssModel;
//!
//! # fn main() -> Result<(), gsino_core::CoreError> {
//! let die = Rect::new(Point::new(0.0, 0.0), Point::new(512.0, 512.0))?;
//! let nets: Vec<Net> = (0..20)
//!     .map(|i| {
//!         let x = 16.0 + (i as f64 * 37.0) % 480.0;
//!         let y = 16.0 + (i as f64 * 53.0) % 480.0;
//!         Net::two_pin(i, Point::new(x, y), Point::new(500.0 - x, 500.0 - y))
//!     })
//!     .collect();
//! let circuit = Circuit::new("demo", die, nets)?;
//! let config = GsinoConfig {
//!     nss_model: Some(NssModel::from_coefficients(
//!         [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
//!         0.5,
//!     )),
//!     threads: 1,
//!     ..GsinoConfig::default()
//! };
//! let mut session = EcoSession::new(&circuit, &config)?;
//! session.begin()?;
//! session.apply(EcoEdit::TightenVth { net: 3, sink: 0, vth: 0.12 })?;
//! session.commit()?;
//! assert_eq!(session.stats().commits, 1);
//! assert!(session.violations().is_clean());
//! # Ok(())
//! # }
//! ```

mod edit;
mod fault;
mod oracle;

pub use edit::{EcoEdit, EditClass};
pub use fault::{FaultKind, FaultPlan};
pub use oracle::OracleConfig;

use crate::budget::{
    budgets_with_constraints, net_budget_entries, uniform_budgets, BudgetPolicy, Budgets,
    LengthModel,
};
use crate::cancel::CancelToken;
use crate::phase2::{
    assignments, build_instance, prepare_instances, solve_instance, solve_prepared_cancel,
    RegionMode, RegionSino, RegionSolution,
};
use crate::pipeline::{reference_kth, GsinoConfig, RouterKind};
use crate::refine::{refine_cancel, RefineStats};
use crate::router::{AstarRouter, IdRouter, RouterStats, ShieldTerm};
use crate::violations::{check, ViolationReport};
use crate::{CoreError, Result};
use gsino_grid::net::Circuit;
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, RouteSet};
use gsino_lsk::table::NoiseTable;
use gsino_sino::delta::DeltaEval;
use gsino_sino::nss::NssModel;
use gsino_sino::warm::budget_swap_preserves_solution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Counters describing a session's lifetime (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Commit attempts (successful or not).
    pub commits: u64,
    /// Explicit [`EcoSession::rollback`] calls.
    pub rollbacks: u64,
    /// Edits accepted by [`EcoSession::apply`].
    pub edits_applied: u64,
    /// Commits replayed on the budget-only rung.
    pub budget_replays: u64,
    /// Commits replayed on the Phase I rung.
    pub phase1_replays: u64,
    /// Commits replayed as full rebuilds (Retile/Reweight).
    pub full_replays: u64,
    /// Phase II region instances re-solved by incremental replays.
    pub regions_resolved: u64,
    /// Phase II region instances reused bitwise by incremental replays.
    pub regions_reused: u64,
    /// Budget-changed regions where the warm-start check
    /// ([`gsino_sino::warm`]) proved the old layout still optimal, so the
    /// Phase II re-solve was skipped.
    pub warm_skips: u64,
    /// Individual oracle checks performed (audit + patched).
    pub oracle_checks: u64,
    /// Divergences the oracle detected.
    pub divergences: u64,
    /// From-scratch replays run to recover from divergences.
    pub degraded_replays: u64,
}

/// The complete routed snapshot a session holds. Private: the accessors
/// on [`EcoSession`] are the read surface, and every mutation goes
/// through the transactional commit path (or explicit fault injection).
struct SessionState {
    circuit: Circuit,
    config: GsinoConfig,
    grid: RegionGrid,
    table: NoiseTable,
    routes: RouteSet,
    router_stats: RouterStats,
    /// Phase I budgets, before Phase III retightening — the replay cache
    /// incremental budgeting patches.
    budgets0: Budgets,
    /// Phase II output, before Phase III — the replay cache incremental
    /// region solving patches.
    sino0: RegionSino,
    /// Post-refine budgets (what [`crate::pipeline::run_gsino`] reports).
    budgets: Budgets,
    /// Post-refine region solutions.
    sino: RegionSino,
    refine_stats: RefineStats,
}

/// An open transaction: working copies of the circuit and configuration
/// with the pending edits already folded in, plus the replay class they
/// collectively demand.
struct Txn {
    circuit: Circuit,
    config: GsinoConfig,
    class: Option<EditClass>,
    budget_nets: BTreeSet<u32>,
}

/// A persistent, fault-tolerant ECO session over one routed circuit. See
/// the [module docs](self) for the lifecycle, replay ladder and oracle
/// contract.
pub struct EcoSession {
    state: SessionState,
    txn: Option<Txn>,
    oracle: OracleConfig,
    stats: SessionStats,
    last_divergence: Option<String>,
}

impl EcoSession {
    /// Routes the circuit from scratch (the full GSINO flow) and opens a
    /// session over the result.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] for invalid configurations — including
    /// [`BudgetPolicy::CongestionWeighted`], whose budgets depend on
    /// global track usage and therefore have no per-net incremental form
    /// — plus any flow error.
    pub fn new(circuit: &Circuit, config: &GsinoConfig) -> Result<Self> {
        Self::with_oracle(circuit, config, OracleConfig::default())
    }

    /// [`Self::new`] with explicit oracle sampling rates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_oracle(
        circuit: &Circuit,
        config: &GsinoConfig,
        oracle: OracleConfig,
    ) -> Result<Self> {
        if config.budget_policy == BudgetPolicy::CongestionWeighted {
            return Err(CoreError::BadConfig {
                reason: "ECO sessions require the uniform budget policy: congestion-weighted \
                         budgets couple every net through global track usage, so no edit has \
                         a bounded replay footprint"
                    .into(),
            });
        }
        let state = SessionState::rebuild(circuit.clone(), config.clone(), &CancelToken::never())?;
        Ok(EcoSession {
            state,
            txn: None,
            oracle,
            stats: SessionStats::default(),
            last_divergence: None,
        })
    }

    /// Opens a transaction.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] if one is already open.
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(CoreError::BadConfig {
                reason: "a transaction is already open".into(),
            });
        }
        self.txn = Some(Txn {
            circuit: self.state.circuit.clone(),
            config: self.state.config.clone(),
            class: None,
            budget_nets: BTreeSet::new(),
        });
        Ok(())
    }

    /// Validates an edit against the live snapshot (plus the edits already
    /// pending in this transaction) and stages it. A rejected edit leaves
    /// the transaction exactly as it was.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] if no transaction is open;
    /// [`CoreError::UnknownId`] for stale net/sink ids;
    /// [`CoreError::BadConfig`] for out-of-range values.
    pub fn apply(&mut self, edit: EcoEdit) -> Result<()> {
        let txn = self.txn.as_mut().ok_or_else(|| CoreError::BadConfig {
            reason: "no open transaction (call begin() first)".into(),
        })?;
        let class = edit.apply_to(&mut txn.circuit, &mut txn.config)?;
        if class == EditClass::BudgetOnly {
            if let Some(net) = edit.budget_net() {
                txn.budget_nets.insert(net);
            }
        }
        txn.class = Some(txn.class.map_or(class, |c| c.max(class)));
        self.stats.edits_applied += 1;
        Ok(())
    }

    /// Discards the open transaction; the snapshot is untouched.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] if no transaction is open.
    pub fn rollback(&mut self) -> Result<()> {
        if self.txn.take().is_none() {
            return Err(CoreError::BadConfig {
                reason: "no open transaction to roll back".into(),
            });
        }
        self.stats.rollbacks += 1;
        Ok(())
    }

    /// Replays the open transaction's edits and installs the new
    /// snapshot. See [`Self::commit_with`].
    ///
    /// # Errors
    ///
    /// See [`Self::commit_with`].
    pub fn commit(&mut self) -> Result<()> {
        self.commit_with(&CancelToken::never())
    }

    /// [`Self::commit`] under a deadline/cancellation token.
    ///
    /// On **any** error — cancellation, a solver failure — the pending
    /// edits are discarded and the session keeps a state bit-identical to
    /// a correct pre-edit snapshot: the candidate state is built aside
    /// and only installed on full success. (If the pre-flight oracle
    /// found a divergence first, "correct pre-edit snapshot" means the
    /// freshly rebuilt one, not the corrupted cache it replaced.)
    ///
    /// # Errors
    ///
    /// [`CoreError::BadConfig`] if no transaction is open;
    /// [`CoreError::Canceled`] once `cancel` fires; solver/routing errors
    /// from the replayed phases.
    pub fn commit_with(&mut self, cancel: &CancelToken) -> Result<()> {
        let txn = self.txn.take().ok_or_else(|| CoreError::BadConfig {
            reason: "no open transaction to commit".into(),
        })?;
        self.stats.commits += 1;
        let mut rng = StdRng::seed_from_u64(
            self.oracle
                .seed
                .wrapping_add(self.stats.commits.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );

        // Pre-flight audit: spot-check the caches the replay is about to
        // build on. Detecting a corruption *before* replaying makes
        // recovery deterministic — the degraded rebuild below restores a
        // clean pre-edit snapshot, and the replay proceeds on top of it.
        if let Some(reason) = oracle::audit(
            &self.state,
            self.oracle.effective_audit(),
            &mut rng,
            &mut self.stats,
        ) {
            self.degrade(
                reason,
                self.state.circuit.clone(),
                self.state.config.clone(),
                cancel,
            )?;
        }

        let Some(class) = txn.class else {
            return Ok(()); // empty transaction: audited, nothing to replay
        };
        let (next, patched) = match class {
            EditClass::FullRebuild => {
                self.stats.full_replays += 1;
                let next = SessionState::rebuild(txn.circuit, txn.config, cancel)?;
                let patched = next.sino0.keys();
                (next, patched)
            }
            EditClass::Phase1 => {
                self.stats.phase1_replays += 1;
                self.replay_phase1(txn.circuit, txn.config, cancel)?
            }
            EditClass::BudgetOnly => {
                self.stats.budget_replays += 1;
                self.replay_budgets(txn.circuit, txn.config, &txn.budget_nets, cancel)?
            }
        };

        // Post-replay check: re-solve a sampled fraction of the patched
        // regions with the reference engine. A divergence here means the
        // incremental replay itself misbehaved; degrade by rebuilding the
        // edited snapshot from scratch — the commit still succeeds.
        if let Some(reason) = oracle::check_patched(
            &next,
            &patched,
            self.oracle.effective_patched(),
            &mut rng,
            &mut self.stats,
        ) {
            return self.degrade(reason, next.circuit, next.config, cancel);
        }
        self.state = next;
        Ok(())
    }

    /// Runs a full (100%-sampled) audit of the cached snapshot right now.
    /// Returns `Ok(true)` if everything checked out; on divergence the
    /// session recovers by degraded replay and returns `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Flow errors from the recovery rebuild only.
    pub fn verify_now(&mut self) -> Result<bool> {
        let mut rng = StdRng::seed_from_u64(self.oracle.seed ^ 0x5EED);
        if let Some(reason) = oracle::audit(&self.state, 1.0, &mut rng, &mut self.stats) {
            self.degrade(
                reason,
                self.state.circuit.clone(),
                self.state.config.clone(),
                &CancelToken::never(),
            )?;
            return Ok(false);
        }
        Ok(true)
    }

    /// Corrupts one cached artifact according to `plan` — the
    /// fault-injection hook the failure-injection suite and the resilience
    /// benches drive. See [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownId`] for stale explicit targets;
    /// [`CoreError::BadConfig`] when there is nothing to corrupt.
    pub fn inject_fault(&mut self, plan: &FaultPlan) -> Result<()> {
        fault::inject(&mut self.state, plan)
    }

    /// Quarantine + graceful degradation: count the divergence, drop the
    /// suspect state, and rebuild `(circuit, config)` from scratch.
    fn degrade(
        &mut self,
        reason: String,
        circuit: Circuit,
        config: GsinoConfig,
        cancel: &CancelToken,
    ) -> Result<()> {
        self.stats.divergences += 1;
        self.last_divergence = Some(reason);
        let rebuilt = SessionState::rebuild(circuit, config, cancel)?;
        self.stats.degraded_replays += 1;
        self.state = rebuilt;
        Ok(())
    }

    /// Phase I rung: re-route the edited netlist, recompute budgets, and
    /// reuse every Phase II region whose occupants and budgets are
    /// unchanged (bit-identical by the determinism of
    /// [`solve_instance`]).
    fn replay_phase1(
        &mut self,
        circuit: Circuit,
        config: GsinoConfig,
        cancel: &CancelToken,
    ) -> Result<(SessionState, Vec<(RegionIdx, Dir)>)> {
        config.validate()?;
        // invariant: the region grid depends only on the die, technology
        // and tile size — all unchanged on this rung — so the cached grid
        // equals RegionGrid::new on the edited circuit.
        let grid = self.state.grid.clone();
        let table = self.state.table.clone();
        let (routes, router_stats) = route_phase1(&circuit, &config, &grid, &table, cancel)?;
        let budgets0 = budget_phase(&circuit, &config, &grid, &routes, &table)?;
        let mut sino0 = RegionSino::default();
        let mut patched = Vec::new();
        let mut scratch = DeltaEval::new();
        for (key, nets) in assignments(&grid, &routes) {
            let (r, dir) = key;
            let reusable = self.state.sino0.solution(r, dir).filter(|old| {
                old.nets == nets
                    && nets
                        .iter()
                        .all(|&n| budgets0.kth(n, r, dir) == self.state.budgets0.kth(n, r, dir))
            });
            if let Some(old) = reusable {
                sino0.insert_solution(r, dir, old.clone());
                self.stats.regions_reused += 1;
            } else {
                cancel.check("phase2")?;
                let inst = build_instance(key, nets, &budgets0, &config.sensitivity)?;
                let (_, sol) = solve_instance(
                    inst,
                    config.solver,
                    RegionMode::Sino,
                    config.sino_engine,
                    &mut scratch,
                )?;
                sino0.insert_solution(r, dir, sol);
                patched.push(key);
                self.stats.regions_resolved += 1;
            }
        }
        let next = finish_with_refine(
            circuit,
            config,
            grid,
            table,
            routes,
            router_stats,
            budgets0,
            sino0,
            cancel,
        )?;
        Ok((next, patched))
    }

    /// Budget-only rung: routes stand; recompute the edited nets' budget
    /// entries and re-solve exactly the regions whose `Kth` changed.
    fn replay_budgets(
        &mut self,
        circuit: Circuit,
        config: GsinoConfig,
        budget_nets: &BTreeSet<u32>,
        cancel: &CancelToken,
    ) -> Result<(SessionState, Vec<(RegionIdx, Dir)>)> {
        config.validate()?;
        let grid = self.state.grid.clone();
        let table = self.state.table.clone();
        let routes = self.state.routes.clone();
        let router_stats = self.state.router_stats;
        let mut budgets0 = self.state.budgets0.clone();
        let mut changed: Vec<(RegionIdx, Dir)> = Vec::new();
        for &net in budget_nets {
            let old_entries = self.state.budgets0.net_entries(net);
            let new_entries = match (circuit.net(net), routes.get(net)) {
                (Some(n), Some(route)) => net_budget_entries(
                    n,
                    &grid,
                    route,
                    &table,
                    &|nn, ss| config.vth_for(nn, ss),
                    LengthModel::Manhattan,
                )?,
                _ => Vec::new(),
            };
            if old_entries == new_entries {
                continue;
            }
            for &((n, r, d), _) in &old_entries {
                budgets0.remove(n, r, d);
            }
            for &((n, r, d), v) in &new_entries {
                budgets0.set(n, r, d, v);
            }
            diff_changed_keys(&old_entries, &new_entries, &mut changed);
        }
        changed.sort_by_key(|(r, d)| (*r, matches!(d, Dir::V)));
        changed.dedup();
        let mut sino0 = self.state.sino0.clone();
        let mut patched = Vec::new();
        let mut scratch = DeltaEval::new();
        for &(r, dir) in &changed {
            // invariant: every budget entry's key hosts segments and was
            // solved in Phase II, so the old solution must exist.
            let Some(old) = self.state.sino0.solution(r, dir) else {
                debug_assert!(false, "budget key ({r}, {dir:?}) has no region solution");
                continue;
            };
            cancel.check("phase2")?;
            let inst = build_instance((r, dir), old.nets.clone(), &budgets0, &config.sensitivity)?;
            // Warm-start check: same nets and sensitivity, only budgets
            // moved — if `gsino_sino::warm` certifies the swap, the solver
            // would retrace its exact steps, so keep the old layout (and
            // its couplings, which never depend on budgets) under the new
            // instance. Skipped regions still go through `patched`, so the
            // runtime oracle re-verifies the certificate on sampled (in
            // debug builds: all) commits.
            let new_kth: Vec<f64> = inst.instance.segments().iter().map(|s| s.kth).collect();
            let sol = if budget_swap_preserves_solution(&old.instance, &new_kth) {
                self.stats.warm_skips += 1;
                RegionSolution {
                    nets: inst.nets,
                    instance: inst.instance,
                    layout: old.layout.clone(),
                    k: old.k.clone(),
                }
            } else {
                self.stats.regions_resolved += 1;
                solve_instance(
                    inst,
                    config.solver,
                    RegionMode::Sino,
                    config.sino_engine,
                    &mut scratch,
                )?
                .1
            };
            sino0.insert_solution(r, dir, sol);
            patched.push((r, dir));
        }
        self.stats.regions_reused += (sino0.len() - patched.len()) as u64;
        let next = finish_with_refine(
            circuit,
            config,
            grid,
            table,
            routes,
            router_stats,
            budgets0,
            sino0,
            cancel,
        )?;
        Ok((next, patched))
    }

    /// The routed circuit the session currently tracks.
    pub fn circuit(&self) -> &Circuit {
        &self.state.circuit
    }

    /// The configuration (including accumulated constraint overrides).
    pub fn config(&self) -> &GsinoConfig {
        &self.state.config
    }

    /// The routing-region grid.
    pub fn grid(&self) -> &RegionGrid {
        &self.state.grid
    }

    /// Per-net routing trees.
    pub fn routes(&self) -> &RouteSet {
        &self.state.routes
    }

    /// Post-refine per-segment budgets (what a from-scratch
    /// [`crate::pipeline::run_gsino`] would report).
    pub fn budgets(&self) -> &Budgets {
        &self.state.budgets
    }

    /// Post-refine region solutions.
    pub fn sino(&self) -> &RegionSino {
        &self.state.sino
    }

    /// Pre-refine (Phase I) budgets — the incremental replay cache.
    pub fn budgets_pre_refine(&self) -> &Budgets {
        &self.state.budgets0
    }

    /// Pre-refine (Phase II) region solutions — the incremental replay
    /// cache.
    pub fn sino_pre_refine(&self) -> &RegionSino {
        &self.state.sino0
    }

    /// Phase III counters from the most recent replay.
    pub fn refine_stats(&self) -> &RefineStats {
        &self.state.refine_stats
    }

    /// Phase I counters from the most recent routing replay.
    pub fn router_stats(&self) -> &RouterStats {
        &self.state.router_stats
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The most recent divergence the oracle detected, if any.
    pub fn last_divergence(&self) -> Option<&str> {
        self.last_divergence.as_deref()
    }

    /// Whether a transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Checks the current snapshot at the configured constraint.
    pub fn violations(&self) -> ViolationReport {
        let s = &self.state;
        check(
            &s.circuit,
            &s.grid,
            &s.routes,
            &s.sino,
            &s.table,
            s.config.vth,
        )
    }
}

impl SessionState {
    /// The full GSINO flow, stage for stage identical to
    /// [`crate::pipeline::run_gsino`], keeping the pre-refine caches.
    fn rebuild(
        circuit: Circuit,
        config: GsinoConfig,
        cancel: &CancelToken,
    ) -> Result<SessionState> {
        config.validate()?;
        let grid = RegionGrid::new(&circuit, &config.tech, config.tile_um)?;
        let table = NoiseTable::calibrated(&config.tech);
        let (routes, router_stats) = route_phase1(&circuit, &config, &grid, &table, cancel)?;
        let budgets0 = budget_phase(&circuit, &config, &grid, &routes, &table)?;
        let work = prepare_instances(
            &grid,
            &routes,
            &budgets0,
            &config.sensitivity,
            config.threads,
        )?;
        let sino0 = solve_prepared_cancel(
            work,
            config.solver,
            RegionMode::Sino,
            config.threads,
            config.sino_engine,
            cancel,
        )?;
        finish_with_refine(
            circuit,
            config,
            grid,
            table,
            routes,
            router_stats,
            budgets0,
            sino0,
            cancel,
        )
    }
}

/// Phase I exactly as [`crate::pipeline::run_gsino`] runs it for the
/// GSINO approach: shield-aware weights (re-fitting Formula (3) when no
/// pre-fitted model is configured — the fit depends on the netlist, so
/// topology replays must not cache it) and the configured router.
fn route_phase1(
    circuit: &Circuit,
    config: &GsinoConfig,
    grid: &RegionGrid,
    table: &NoiseTable,
    cancel: &CancelToken,
) -> Result<(RouteSet, RouterStats)> {
    let shield_term = if config.shield_reservation {
        let model = match &config.nss_model {
            Some(m) => m.clone(),
            None => {
                let kth_ref = reference_kth(circuit, table, config.vth);
                NssModel::fit(kth_ref, config.nss_fit_seed)?
            }
        };
        ShieldTerm::Estimated {
            model,
            rate: config.sensitivity.rate(),
        }
    } else {
        ShieldTerm::None
    };
    match config.router {
        RouterKind::IterativeDeletion => {
            IdRouter::new(grid, config.weights, shield_term).route_cancel(circuit, cancel)
        }
        RouterKind::SequentialAstar => {
            // The A* batches poll no token internally; the deadline is
            // honoured between stages only.
            cancel.check("phase1")?;
            AstarRouter::new(grid, config.weights, shield_term)
                .route_with_threads(circuit, config.threads)
        }
    }
}

/// Phase I budgeting exactly as [`crate::pipeline::run_gsino`] runs it
/// for the GSINO approach (Manhattan estimates; constraint overrides
/// honoured).
fn budget_phase(
    circuit: &Circuit,
    config: &GsinoConfig,
    grid: &RegionGrid,
    routes: &RouteSet,
    table: &NoiseTable,
) -> Result<Budgets> {
    if config.vth_overrides.is_empty() {
        uniform_budgets(
            circuit,
            grid,
            routes,
            table,
            config.vth,
            LengthModel::Manhattan,
        )
    } else {
        budgets_with_constraints(
            circuit,
            grid,
            routes,
            table,
            &|n, s| config.vth_for(n, s),
            LengthModel::Manhattan,
        )
    }
}

/// Phase III on clones of the pre-refine caches, assembling the full
/// snapshot. Refinement is deterministic, so the post-refine state is
/// bit-identical to a from-scratch run whenever the pre-refine inputs
/// are.
#[allow(clippy::too_many_arguments)]
fn finish_with_refine(
    circuit: Circuit,
    config: GsinoConfig,
    grid: RegionGrid,
    table: NoiseTable,
    routes: RouteSet,
    router_stats: RouterStats,
    budgets0: Budgets,
    sino0: RegionSino,
    cancel: &CancelToken,
) -> Result<SessionState> {
    let mut budgets = budgets0.clone();
    let mut sino = sino0.clone();
    let refine_stats = refine_cancel(
        &circuit,
        &grid,
        &routes,
        &mut budgets,
        &mut sino,
        &table,
        config.vth,
        config.solver,
        &config.refine,
        cancel,
    )?;
    Ok(SessionState {
        circuit,
        config,
        grid,
        table,
        routes,
        router_stats,
        budgets0,
        sino0,
        budgets,
        sino,
        refine_stats,
    })
}

/// Accumulates the `(region, dir)` keys whose budget value was added,
/// removed or changed between two sorted per-net entry lists.
fn diff_changed_keys(
    old: &[((u32, RegionIdx, Dir), f64)],
    new: &[((u32, RegionIdx, Dir), f64)],
    changed: &mut Vec<(RegionIdx, Dir)>,
) {
    use std::collections::HashMap;
    let old_map: HashMap<_, _> = old.iter().copied().collect();
    let new_map: HashMap<_, _> = new.iter().copied().collect();
    for (k, v) in &old_map {
        if new_map.get(k) != Some(v) {
            changed.push((k.1, k.2));
        }
    }
    for (k, v) in &new_map {
        if old_map.get(k) != Some(v) {
            changed.push((k.1, k.2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_flow_with_artifacts, Approach};
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::{CircuitEdit, Net};

    fn small_circuit(n: u32) -> Circuit {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
        let nets: Vec<Net> = (0..n)
            .map(|i| {
                let x = 16.0 + (i as f64 * 37.0) % 600.0;
                let y = 16.0 + (i as f64 * 53.0) % 600.0;
                Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
            })
            .collect();
        Circuit::new("small", die, nets).unwrap()
    }

    fn fast_config() -> GsinoConfig {
        GsinoConfig {
            nss_model: Some(NssModel::from_coefficients(
                [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
                0.5,
            )),
            threads: 1,
            ..GsinoConfig::default()
        }
    }

    fn assert_matches_scratch(session: &EcoSession) {
        let (outcome, internals) =
            run_flow_with_artifacts(session.circuit(), session.config(), Approach::Gsino).unwrap();
        assert_eq!(session.routes(), &outcome.routes, "routes diverged");
        assert_eq!(session.budgets(), &internals.budgets, "budgets diverged");
        assert_eq!(session.sino(), &internals.sino, "sino diverged");
    }

    #[test]
    fn session_seed_matches_from_scratch() {
        let circuit = small_circuit(20);
        let session = EcoSession::new(&circuit, &fast_config()).unwrap();
        assert_matches_scratch(&session);
        assert!(session.violations().is_clean());
    }

    #[test]
    fn budget_edit_commits_and_matches_scratch() {
        let circuit = small_circuit(20);
        let mut session = EcoSession::new(&circuit, &fast_config()).unwrap();
        session.begin().unwrap();
        session
            .apply(EcoEdit::TightenVth {
                net: 3,
                sink: 0,
                vth: 0.10,
            })
            .unwrap();
        session.commit().unwrap();
        assert_eq!(session.stats().budget_replays, 1);
        assert_eq!(session.stats().divergences, 0);
        assert_matches_scratch(&session);
    }

    #[test]
    fn warm_skip_fires_and_stays_bit_identical() {
        use gsino_grid::sensitivity::SensitivityModel;
        // An insensitive circuit: every segment's coupling upper bound is
        // zero, so any budget move on a region whose placement order is
        // undisturbed is certified by `gsino_sino::warm` and Phase II is
        // skipped for it. Debug builds force 100% oracle sampling, so each
        // skipped region is re-solved and compared bitwise by the oracle —
        // the certificate is machine-checked, not just trusted.
        let config = GsinoConfig {
            sensitivity: SensitivityModel::new(0.0, 1),
            ..fast_config()
        };
        let circuit = small_circuit(20);
        let mut session = EcoSession::with_oracle(
            &circuit,
            &config,
            OracleConfig {
                patched_sample: 1.0,
                ..OracleConfig::default()
            },
        )
        .unwrap();
        session.begin().unwrap();
        session
            .apply(EcoEdit::TightenVth {
                net: 3,
                sink: 0,
                vth: 0.10,
            })
            .unwrap();
        session.commit().unwrap();
        assert!(session.stats().warm_skips > 0, "no region was warm-skipped");
        assert_eq!(session.stats().divergences, 0);
        assert!(session.verify_now().unwrap());
        assert_matches_scratch(&session);
    }

    #[test]
    fn warm_skip_does_not_fire_when_budgets_bind() {
        // The default 30% sensitivity circuit: the tightened region's
        // budgets sit below the coupling upper bound, so the certificate
        // must be refused and the region genuinely re-solved.
        let circuit = small_circuit(20);
        let mut session = EcoSession::new(&circuit, &fast_config()).unwrap();
        session.begin().unwrap();
        session
            .apply(EcoEdit::TightenVth {
                net: 3,
                sink: 0,
                vth: 0.10,
            })
            .unwrap();
        session.commit().unwrap();
        assert_eq!(session.stats().divergences, 0);
        assert_matches_scratch(&session);
    }

    #[test]
    fn topology_edit_commits_and_matches_scratch() {
        let circuit = small_circuit(20);
        let mut session = EcoSession::new(&circuit, &fast_config()).unwrap();
        session.begin().unwrap();
        session
            .apply(EcoEdit::Circuit(CircuitEdit::AddNet {
                net: Net::two_pin(99, Point::new(20.0, 600.0), Point::new(600.0, 30.0)),
            }))
            .unwrap();
        session.commit().unwrap();
        assert_eq!(session.stats().phase1_replays, 1);
        assert!(session.circuit().net(99).is_some());
        assert_matches_scratch(&session);
    }

    #[test]
    fn stale_ids_are_rejected_typed() {
        let circuit = small_circuit(8);
        let mut session = EcoSession::new(&circuit, &fast_config()).unwrap();
        session.begin().unwrap();
        assert!(matches!(
            session.apply(EcoEdit::TightenVth {
                net: 555,
                sink: 0,
                vth: 0.1
            }),
            Err(CoreError::UnknownId {
                kind: "net",
                id: 555
            })
        ));
        assert!(matches!(
            session.apply(EcoEdit::TightenVth {
                net: 2,
                sink: 7,
                vth: 0.1
            }),
            Err(CoreError::UnknownId {
                kind: "sink",
                id: 7
            })
        ));
        assert!(matches!(
            session.apply(EcoEdit::Circuit(CircuitEdit::RemoveNet { net: 555 })),
            Err(CoreError::UnknownId {
                kind: "net",
                id: 555
            })
        ));
        // The rejected edits left the transaction consistent.
        session
            .apply(EcoEdit::TightenVth {
                net: 2,
                sink: 0,
                vth: 0.1,
            })
            .unwrap();
        session.rollback().unwrap();
        assert_matches_scratch(&session);
    }

    #[test]
    fn transaction_discipline_is_enforced() {
        let circuit = small_circuit(6);
        let mut session = EcoSession::new(&circuit, &fast_config()).unwrap();
        assert!(session.commit().is_err());
        assert!(session.rollback().is_err());
        assert!(session
            .apply(EcoEdit::RelaxVth { net: 0, sink: 0 })
            .is_err());
        session.begin().unwrap();
        assert!(session.begin().is_err());
        session.rollback().unwrap();
        assert_eq!(session.stats().rollbacks, 1);
    }

    #[test]
    fn congestion_weighted_policy_is_rejected() {
        let circuit = small_circuit(6);
        let config = GsinoConfig {
            budget_policy: BudgetPolicy::CongestionWeighted,
            ..fast_config()
        };
        assert!(matches!(
            EcoSession::new(&circuit, &config),
            Err(CoreError::BadConfig { .. })
        ));
    }

    #[test]
    fn verify_now_on_clean_state_is_true() {
        let circuit = small_circuit(10);
        let mut session = EcoSession::new(&circuit, &fast_config()).unwrap();
        assert!(session.verify_now().unwrap());
        assert_eq!(session.stats().divergences, 0);
        assert!(session.stats().oracle_checks > 0);
    }
}
