//! Phase III: iterative local refinement (paper Fig. 2), incremental
//! engine.
//!
//! Phase I budgets with the Manhattan source→sink estimate; detours make
//! real paths longer, under-estimating crosstalk, so a few nets can still
//! violate after Phase II. Pass 1 walks violating nets (worst first) and,
//! for each, tightens the budget of its segment in the *least congested*
//! region it crosses until one more shield goes in, re-running SINO there,
//! until the net is clean. Pass 2 then walks the *most congested* regions
//! and tries to buy a shield back: raise the budgets of the largest-slack
//! nets until SINO drops a shield, accepting only if no net starts
//! violating.
//!
//! # The incremental contract
//!
//! The seed pass (preserved verbatim in [`mod@reference`]) re-derived all of
//! its bookkeeping from scratch per edit. This module keeps Phase III's
//! cost proportional to what an edit actually touches, mirroring the
//! [`gsino_sino::delta::DeltaEval`] contract of Phase II:
//!
//! * **What is cached.** A [`tracker::LskTracker`] holds, per sink, the
//!   flat `(lⱼ, Kᵢʲ)` term list of paper Eq. (1) — region paths and
//!   per-region lengths are fixed for the whole phase, so they are walked
//!   exactly once at entry — plus a `(region, dir) → terms` reverse index
//!   and the per-net worst violating voltage. Pass 1's work queue is a
//!   [`tracker::SeverityQueue`] (lazy max-heap) instead of a full-map scan
//!   per pick. One persistent `DeltaEval` per touched `(region, dir)`
//!   (`RegionEngines`) mirrors that region's installed layout across
//!   edits, so couplings after a re-solve are read straight from the
//!   evaluator instead of a from-scratch re-evaluate.
//!
//! * **When it is patched.** A budget tweak re-solves its region through
//!   [`SinoSolver::resolve_after_kth`] (bit-identical to a cold
//!   `solve`, but leaving the evaluator mirroring the result); the
//!   tracker then patches only the crossing nets' sums —
//!   O(crossing segments + dirty-sink terms) instead of full
//!   `check_net` route walks. Pass 2 trials run as transactions: the
//!   evaluator state is saved ([`DeltaSnapshot`]), budgets are raised in
//!   place, and a rejected recovery restores evaluator, layout, couplings
//!   and budgets bitwise — no `RegionSolution` clone, no O(n²)
//!   sensitivity-matrix copy.
//!
//! * **Why the result is identical.** Dirty sinks are re-summed over the
//!   cached terms in the exact order the seed pass's `sink_lsk` iterates,
//!   the queue reproduces the seed tie-break (highest voltage, then
//!   smallest net id — see [`tracker::SeverityQueue`]), and the region
//!   re-solves are the same pure function of the instance. Final
//!   [`Budgets`], [`RegionSino`] and [`RefineStats`] are therefore
//!   **bit-identical** to [`reference::refine`] — property-tested in
//!   `tests/refine_equivalence.rs` and asserted in the `phase_runtime`
//!   bench.
//!
//! * **The debug oracle.** In `cfg(debug_assertions)` builds, every region
//!   edit (pass 1 install, pass 2 accept/reject) is followed by
//!   [`tracker::LskTracker::oracle_check`], which re-runs the full
//!   [`check`] and compares every severity and sink violation bitwise.

pub mod reference;
pub mod tracker;

use crate::budget::Budgets;
use crate::cancel::CancelToken;
use crate::phase2::{RegionSino, RegionSolution};
use crate::violations::check;
use crate::Result;
use gsino_grid::net::Circuit;
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, RouteSet};
use gsino_lsk::table::NoiseTable;
use gsino_sino::delta::{DeltaEval, DeltaSnapshot};
use gsino_sino::solver::{SinoSolver, SolverConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use tracker::{LskTracker, SeverityQueue};

/// Safety bounds for the refinement loops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Outer-loop bound of pass 1 (distinct net fixes).
    pub max_pass1_iters: usize,
    /// Inner-loop bound per net.
    pub max_inner_iters: usize,
    /// Whether to run the congestion-reduction pass 2.
    pub enable_pass2: bool,
    /// Full sweeps of pass 2.
    pub pass2_sweeps: usize,
    /// Pass 2 only visits regions at least this dense: shields in
    /// under-capacity regions cost no routing area, so recovering them
    /// buys nothing (the paper's pass 2 is congestion-driven).
    pub pass2_density_floor: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_pass1_iters: 50_000,
            max_inner_iters: 256,
            enable_pass2: true,
            pass2_sweeps: 2,
            pass2_density_floor: 0.75,
        }
    }
}

/// What refinement did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Nets processed by pass 1.
    pub pass1_nets: usize,
    /// Shields added by pass 1.
    pub pass1_shields_added: u64,
    /// Shields recovered by pass 2.
    pub pass2_shields_removed: u64,
    /// Regions visited by pass 2.
    pub pass2_regions: usize,
    /// Nets pass 1 could not fix within its iteration bounds.
    pub pass1_unfixed: usize,
    /// Whether pass 1 left the solution violation-free.
    pub clean: bool,
}

/// The persistent per-`(region, dir)` evaluators: each mirrors its
/// region's installed layout across refine edits, loaded lazily on first
/// touch and kept in sync by every install/rollback.
#[derive(Debug, Default)]
struct RegionEngines {
    map: HashMap<(RegionIdx, Dir), DeltaEval>,
}

impl RegionEngines {
    /// The evaluator of `(r, dir)`, loading it from the installed solution
    /// on first touch.
    fn engine(&mut self, r: RegionIdx, dir: Dir, sol: &RegionSolution) -> &mut DeltaEval {
        self.map.entry((r, dir)).or_insert_with(|| {
            let mut e = DeltaEval::new();
            e.load(&sol.instance, &sol.layout);
            e
        })
    }
}

/// How one pass-2 recovery attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Recovery {
    /// A shield came out and every crossing net stayed clean.
    Recovered,
    /// A shield came out but some net started violating; the transaction
    /// was rolled back bitwise.
    Rejected,
    /// No budget raise freed a shield; trial raises were dropped.
    NoCandidate,
}

/// Runs both passes, mutating budgets and region solutions in place.
///
/// Bit-identical to [`reference::refine`] (same final [`Budgets`],
/// [`RegionSino`] and [`RefineStats`]) — see the module docs for the
/// incremental contract.
///
/// # Errors
///
/// Propagates SINO solver errors (internal-invariant failures only).
#[allow(clippy::too_many_arguments)]
pub fn refine(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    vth: f64,
    solver: SolverConfig,
    config: &RefineConfig,
) -> Result<RefineStats> {
    refine_cancel(
        circuit,
        grid,
        routes,
        budgets,
        sino,
        table,
        vth,
        solver,
        config,
        &CancelToken::never(),
    )
}

/// [`refine`] polling a [`CancelToken`] once per pass-1 net pick and once
/// per pass-2 region pick. Cancellation leaves `budgets`/`sino` in a
/// consistent but partially-refined state — transactional callers (the
/// ECO session) refine **clones** and discard them on error, so nothing
/// needs undoing here.
///
/// # Errors
///
/// [`CoreError::Canceled`](crate::CoreError) once the token
/// fires, plus the same solver errors as [`refine`].
#[allow(clippy::too_many_arguments)]
pub fn refine_cancel(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    vth: f64,
    solver: SolverConfig,
    config: &RefineConfig,
    cancel: &CancelToken,
) -> Result<RefineStats> {
    let mut stats = RefineStats::default();
    let mut tracker = LskTracker::new(circuit, grid, routes, sino, table, vth);
    let mut engines = RegionEngines::default();
    pass1(
        circuit,
        grid,
        routes,
        budgets,
        sino,
        table,
        solver,
        config,
        &mut stats,
        &mut tracker,
        &mut engines,
        cancel,
    )?;
    stats.clean = tracker.is_clean();
    debug_assert_eq!(
        stats.clean,
        check(circuit, grid, routes, sino, table, vth).is_clean(),
        "tracker cleanliness diverged from a full check"
    );
    if config.enable_pass2 && stats.clean {
        pass2(
            circuit,
            grid,
            routes,
            budgets,
            sino,
            table,
            solver,
            config,
            &mut stats,
            &mut tracker,
            &mut engines,
            cancel,
        )?;
    }
    Ok(stats)
}

/// Pass 1: eliminate crosstalk violations.
///
/// The violation report is maintained incrementally: re-solving one region
/// only changes the coupling of the nets crossing it, so only those nets'
/// cached sums are patched — this is what keeps Phase III cheap relative
/// to the ID routing phase (paper §5).
#[allow(clippy::too_many_arguments)]
fn pass1(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    solver: SolverConfig,
    config: &RefineConfig,
    stats: &mut RefineStats,
    tracker: &mut LskTracker,
    engines: &mut RegionEngines,
    cancel: &CancelToken,
) -> Result<()> {
    let solver = SinoSolver::new(solver);
    let mut queue = SeverityQueue::new(&tracker.nets_by_severity());
    for _ in 0..config.max_pass1_iters {
        cancel.check("phase3")?;
        let net_id = match queue.pick() {
            Some(n) => n,
            None => return Ok(()),
        };
        stats.pass1_nets += 1;
        // invariant: the tracker only reports nets it scored from routes.
        let route = routes.get(net_id).expect("violating net is routed");
        // Nets whose queue entry the inner loop dirtied. The flush is
        // batched to one `queue.set` per net per outer iteration: `pick()`
        // only runs in the outer loop and the queue is last-write-wins
        // against the tracker, so deferring the writes is bit-identical
        // while pushing one lazy heap entry per net instead of one per
        // (region edit × crossing net).
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        for _ in 0..config.max_inner_iters {
            if tracker.net_is_clean(net_id) {
                break;
            }
            // Candidate segments of this net, least congested region first
            // (paper: "the least congested routing region through which Ni
            // is routed"), skipping segments that already have K = 0.
            let mut candidates: Vec<(f64, RegionIdx, Dir)> = Vec::new();
            for r in route.regions() {
                for dir in [Dir::H, Dir::V] {
                    if !route.occupies(grid, r, dir) {
                        continue;
                    }
                    if let Some(sol) = sino.solution(r, dir) {
                        let k = sol.index_of(net_id).map(|i| sol.k[i]).unwrap_or(0.0);
                        if k > 1e-12 {
                            let cap = match dir {
                                Dir::H => grid.hc(),
                                Dir::V => grid.vc(),
                            } as f64;
                            let density = (sol.nets.len() + sol.layout.num_shields()) as f64 / cap;
                            candidates.push((density, r, dir));
                        }
                    }
                }
            }
            candidates.sort_by(|a, b| {
                // invariant: region densities are finite ratios of counts.
                a.0.partial_cmp(&b.0)
                    .expect("finite densities")
                    .then_with(|| a.1.cmp(&b.1))
            });
            let (_, r, dir) = match candidates.first() {
                Some(&c) => c,
                // No coupled segment left to shield; the net cannot be
                // improved further in this pass.
                None => break,
            };
            {
                // invariant: the candidate list above was enumerated from
                // this net's solved segments, so both lookups succeed.
                let sol = sino
                    .solution_mut(r, dir)
                    .expect("candidate came from a solution");
                let idx = sol.index_of(net_id).expect("net is in this region");
                // Tighten the segment budget so SINO must shield it harder
                // (Formula (3)'s inverse role in the paper — decide how
                // much Kth drops for one more shield). 0.7 trims K without
                // grossly over-shielding the region.
                let new_kth = (sol.k[idx] * 0.7).max(1e-9);
                sol.instance.set_kth(idx, new_kth)?;
                budgets.set(net_id, r, dir, new_kth);
                let before = sol.layout.num_shields();
                let engine = engines.engine(r, dir, sol);
                engine.rebudget(&sol.instance, idx);
                sol.layout = solver.resolve_after_kth(&sol.instance, engine)?;
                // The evaluator mirrors the re-solved layout, so the
                // couplings come straight from its cache — no re-evaluate.
                sol.k.clear();
                sol.k.extend_from_slice(engine.k_values());
                stats.pass1_shields_added +=
                    (sol.layout.num_shields().saturating_sub(before)) as u64;
                tracker.region_updated(r, dir, &sol.k, table);
            }
            // Mirror the seed pass's affected-net recheck on the queue:
            // every crossing net is re-enqueued (or dropped) at its
            // tracked severity, via the batched flush below.
            // invariant: the picked key came from the solved-region scan.
            let affected = sino.solution(r, dir).expect("exists");
            touched.extend(affected.nets.iter().copied());
            debug_oracle(tracker, circuit, grid, routes, sino, table);
        }
        for &nid in &touched {
            queue.set(nid, tracker.net_worst(nid));
        }
        // The net may be unfixable within bounds (no coupled segments
        // left); drop it from the queue either way — if it is still dirty,
        // the tracker (and the final report) flags it honestly.
        if !tracker.net_is_clean(net_id) {
            stats.pass1_unfixed += 1;
        }
        queue.remove(net_id);
    }
    Ok(())
}

/// Pass 2: reduce routing congestion by recovering shields where slack
/// allows.
#[allow(clippy::too_many_arguments)]
fn pass2(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    solver: SolverConfig,
    config: &RefineConfig,
    stats: &mut RefineStats,
    tracker: &mut LskTracker,
    engines: &mut RegionEngines,
    cancel: &CancelToken,
) -> Result<()> {
    let solver = SinoSolver::new(solver);
    let mut snap = DeltaSnapshot::new();
    // The key set never changes during refinement; the seed pass re-sorted
    // it per pick, identically.
    let keys = sino.keys();
    for _ in 0..config.pass2_sweeps {
        let mut improved = false;
        let mut visited: HashSet<(RegionIdx, Dir)> = HashSet::new();
        loop {
            // Most congested unvisited region with shields to recover.
            let mut best: Option<(f64, RegionIdx, Dir)> = None;
            for &(r, dir) in &keys {
                if visited.contains(&(r, dir)) {
                    continue;
                }
                // invariant: iterating `keys()` of the same solution set.
                let sol = sino.solution(r, dir).expect("key enumerated");
                if sol.layout.num_shields() == 0 {
                    continue;
                }
                let cap = match dir {
                    Dir::H => grid.hc(),
                    Dir::V => grid.vc(),
                } as f64;
                let density = (sol.nets.len() + sol.layout.num_shields()) as f64 / cap;
                if density < config.pass2_density_floor {
                    continue;
                }
                if best.is_none_or(|(d, _, _)| density > d) {
                    best = Some((density, r, dir));
                }
            }
            let (_, r, dir) = match best {
                Some(b) => b,
                None => break,
            };
            cancel.check("phase3")?;
            visited.insert((r, dir));
            stats.pass2_regions += 1;
            let outcome = try_recover_shield(
                budgets, sino, tracker, table, &solver, engines, &mut snap, r, dir, stats,
            )?;
            debug_oracle(tracker, circuit, grid, routes, sino, table);
            if outcome == Recovery::Recovered {
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(())
}

/// Attempts to remove one shield from `(r, dir)` by raising budgets of the
/// largest-slack nets; accepts only violation-free outcomes.
///
/// Runs as a transaction against the region's persistent evaluator: the
/// pre-trial state is captured once ([`DeltaEval::save_into`]), budgets
/// are raised in place, and rejection restores evaluator, layout,
/// couplings and budgets bitwise — no [`RegionSolution`] clone.
#[allow(clippy::too_many_arguments)]
fn try_recover_shield(
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    tracker: &mut LskTracker,
    table: &NoiseTable,
    solver: &SinoSolver,
    engines: &mut RegionEngines,
    snap: &mut DeltaSnapshot,
    r: RegionIdx,
    dir: Dir,
    stats: &mut RefineStats,
) -> Result<Recovery> {
    // invariant: both callers verified this key holds a solution.
    let sol = sino.solution_mut(r, dir).expect("caller checked existence");
    let nets = sol.nets.clone();
    let n = nets.len();
    let base_shields = sol.layout.num_shields();
    let engine = engines.engine(r, dir, sol);
    // Transaction begin: the evaluator mirrors the installed layout, so
    // the snapshot plus the saved budgets are the whole undo log.
    engine.save_into(snap);
    let saved_kth: Vec<f64> = (0..n).map(|i| sol.instance.segment(i).kth).collect();
    let mut raised: Vec<usize> = Vec::new();
    for _ in 0..n {
        // Largest remaining positive slack under the current layout.
        let mut pick: Option<(f64, usize)> = None;
        for i in 0..n {
            if raised.contains(&i) {
                continue;
            }
            let slack = sol.instance.segment(i).kth - sol.k[i];
            if slack > 1e-12 && pick.is_none_or(|(s, _)| slack > s) {
                pick = Some((slack, i));
            }
        }
        let (slack, i) = match pick {
            Some(p) => p,
            None => break,
        };
        sol.instance
            .set_kth(i, sol.instance.segment(i).kth + slack)?;
        raised.push(i);
        engine.rebudget(&sol.instance, i);
        let layout = solver.resolve_after_kth(&sol.instance, engine)?;
        if layout.num_shields() >= base_shields {
            continue;
        }
        // Tentatively install and verify through the tracker.
        let removed = (base_shields - layout.num_shields()) as u64;
        sol.layout = layout;
        sol.k.clear();
        sol.k.extend_from_slice(engine.k_values());
        tracker.region_updated(r, dir, &sol.k, table);
        if nets.iter().any(|&nid| !tracker.net_is_clean(nid)) {
            // Roll the transaction back bitwise.
            engine.restore(snap);
            sol.layout = engine.to_layout();
            sol.k.clear();
            sol.k.extend_from_slice(engine.k_values());
            for (i2, &kth) in saved_kth.iter().enumerate() {
                sol.instance.set_kth(i2, kth)?;
            }
            tracker.region_updated(r, dir, &sol.k, table);
            return Ok(Recovery::Rejected);
        }
        for &i2 in &raised {
            budgets.set(nets[i2], r, dir, sol.instance.segment(i2).kth);
        }
        stats.pass2_shields_removed += removed;
        return Ok(Recovery::Recovered);
    }
    // No shield came out: drop the trial budget raises and re-sync the
    // evaluator to the (unchanged) installed layout.
    for (i, &kth) in saved_kth.iter().enumerate() {
        sol.instance.set_kth(i, kth)?;
    }
    engine.restore(snap);
    Ok(Recovery::NoCandidate)
}

/// Debug-build oracle: the tracker must stay bit-identical to a full
/// [`check`] after every region edit.
#[cfg(debug_assertions)]
fn debug_oracle(
    tracker: &LskTracker,
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    sino: &RegionSino,
    table: &NoiseTable,
) {
    tracker.oracle_check(circuit, grid, routes, sino, table);
}

#[cfg(not(debug_assertions))]
#[inline]
fn debug_oracle(
    _tracker: &LskTracker,
    _circuit: &Circuit,
    _grid: &RegionGrid,
    _routes: &RouteSet,
    _sino: &RegionSino,
    _table: &NoiseTable,
) {
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{uniform_budgets, LengthModel};
    use crate::phase2::{solve_regions, RegionMode};
    use crate::router::{route_all, ShieldTerm, Weights};
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::{Circuit, Net};
    use gsino_grid::sensitivity::SensitivityModel;
    use gsino_grid::tech::Technology;

    /// A bus guaranteed to violate after Phase II when budgets are computed
    /// from a deliberately optimistic length estimate.
    fn violating_setup() -> (
        Circuit,
        gsino_grid::RegionGrid,
        RouteSet,
        NoiseTable,
        Budgets,
        RegionSino,
    ) {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(3840.0, 640.0)).unwrap();
        let nets: Vec<Net> = (0..14)
            .map(|i| {
                Net::two_pin(
                    i,
                    Point::new(8.0, 320.0 + i as f64),
                    Point::new(3830.0, 320.0 + i as f64),
                )
            })
            .collect();
        let circuit = Circuit::new("viol", die, nets).unwrap();
        let tech = Technology::itrs_100nm();
        let grid = gsino_grid::RegionGrid::new(&circuit, &tech, 64.0).unwrap();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let table = NoiseTable::calibrated(&tech);
        // Budget with a loose vth (0.30) but check against a strict one
        // (0.15) — mimics the Manhattan-underestimate situation that makes
        // Phase III necessary, in a controlled way. A mid sensitivity rate
        // matters: at rate 1.0 capacitive freedom already isolates every
        // net (K = 0 everywhere) and nothing can violate.
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.30,
            LengthModel::Manhattan,
        )
        .unwrap();
        let sens = SensitivityModel::new(0.5, 3);
        let sino = solve_regions(
            &grid,
            &routes,
            &budgets,
            &sens,
            SolverConfig::default(),
            RegionMode::Sino,
            1,
        )
        .unwrap();
        (circuit, grid, routes, table, budgets, sino)
    }

    #[test]
    fn pass1_eliminates_all_violations() {
        let (circuit, grid, routes, table, mut budgets, mut sino) = violating_setup();
        let before = check(&circuit, &grid, &routes, &sino, &table, 0.15);
        assert!(before.violating_nets() > 0, "setup must violate at 0.15 V");
        let stats = refine(
            &circuit,
            &grid,
            &routes,
            &mut budgets,
            &mut sino,
            &table,
            0.15,
            SolverConfig::default(),
            &RefineConfig::default(),
        )
        .unwrap();
        assert!(stats.clean);
        assert!(stats.pass1_nets > 0);
        let after = check(&circuit, &grid, &routes, &sino, &table, 0.15);
        assert!(
            after.is_clean(),
            "{} nets still violate",
            after.violating_nets()
        );
    }

    #[test]
    fn refine_on_clean_input_is_cheap() {
        let (circuit, grid, routes, table, mut budgets, mut sino) = violating_setup();
        // Check against the same loose vth used for budgeting: no
        // violations exist, so pass 1 should do nothing.
        let stats = refine(
            &circuit,
            &grid,
            &routes,
            &mut budgets,
            &mut sino,
            &table,
            0.30,
            SolverConfig::default(),
            &RefineConfig {
                enable_pass2: false,
                ..RefineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(stats.pass1_nets, 0);
        assert_eq!(stats.pass1_shields_added, 0);
        assert!(stats.clean);
    }

    #[test]
    fn pass2_never_reintroduces_violations() {
        let (circuit, grid, routes, table, mut budgets, mut sino) = violating_setup();
        let stats = refine(
            &circuit,
            &grid,
            &routes,
            &mut budgets,
            &mut sino,
            &table,
            0.15,
            SolverConfig::default(),
            &RefineConfig {
                pass2_sweeps: 2,
                ..RefineConfig::default()
            },
        )
        .unwrap();
        assert!(stats.clean);
        let after = check(&circuit, &grid, &routes, &sino, &table, 0.15);
        assert!(after.is_clean());
    }

    #[test]
    fn pass1_respects_iteration_bounds() {
        let (circuit, grid, routes, table, mut budgets, mut sino) = violating_setup();
        let stats = refine(
            &circuit,
            &grid,
            &routes,
            &mut budgets,
            &mut sino,
            &table,
            0.15,
            SolverConfig::default(),
            &RefineConfig {
                max_pass1_iters: 1,
                max_inner_iters: 1,
                enable_pass2: false,
                pass2_sweeps: 0,
                ..RefineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(stats.pass1_nets, 1);
    }

    /// The incremental engine and the preserved seed pass must agree on
    /// every output, bit for bit, across configurations.
    #[test]
    fn incremental_matches_reference_pass() {
        let (circuit, grid, routes, table, budgets0, sino0) = violating_setup();
        let configs = [
            (SolverConfig::default(), RefineConfig::default()),
            (
                SolverConfig::default(),
                RefineConfig {
                    enable_pass2: false,
                    ..RefineConfig::default()
                },
            ),
            (SolverConfig::with_anneal(300, 11), RefineConfig::default()),
            (
                SolverConfig::default(),
                RefineConfig {
                    max_pass1_iters: 3,
                    max_inner_iters: 2,
                    ..RefineConfig::default()
                },
            ),
        ];
        for (solver, refine_cfg) in configs {
            let (mut b_ref, mut s_ref) = (budgets0.clone(), sino0.clone());
            let (mut b_inc, mut s_inc) = (budgets0.clone(), sino0.clone());
            let stats_ref = reference::refine(
                &circuit,
                &grid,
                &routes,
                &mut b_ref,
                &mut s_ref,
                &table,
                0.15,
                solver,
                &refine_cfg,
            )
            .unwrap();
            let stats_inc = refine(
                &circuit,
                &grid,
                &routes,
                &mut b_inc,
                &mut s_inc,
                &table,
                0.15,
                solver,
                &refine_cfg,
            )
            .unwrap();
            assert_eq!(stats_ref, stats_inc, "stats diverged ({refine_cfg:?})");
            assert_eq!(b_ref, b_inc, "budgets diverged ({refine_cfg:?})");
            assert_eq!(s_ref, s_inc, "region solutions diverged ({refine_cfg:?})");
        }
    }

    /// The heap-backed queue picks exactly the net `nets_by_severity`
    /// ranks first (highest voltage, ties to the smallest net id) — the
    /// deterministic ordering both engines share.
    #[test]
    fn queue_pick_agrees_with_nets_by_severity() {
        let (circuit, grid, routes, table, _, sino) = violating_setup();
        let tracker = LskTracker::new(&circuit, &grid, &routes, &sino, &table, 0.15);
        let ranked = tracker.nets_by_severity();
        assert!(!ranked.is_empty(), "setup must violate");
        let mut queue = SeverityQueue::new(&ranked);
        for &(net, _) in &ranked {
            assert_eq!(queue.pick(), Some(net));
            queue.remove(net);
        }
        assert_eq!(queue.pick(), None);
        // Cross-check against the report the seed pass scans.
        let report = check(&circuit, &grid, &routes, &sino, &table, 0.15);
        assert_eq!(ranked, report.nets_by_severity());
    }

    /// A rejected pass-2 recovery must leave budgets, region solutions and
    /// the tracker bitwise-untouched — no state leaks from the transaction.
    #[test]
    fn rejected_recovery_rolls_back_completely() {
        let (circuit, grid, routes, table, mut budgets, mut sino) = violating_setup();
        refine(
            &circuit,
            &grid,
            &routes,
            &mut budgets,
            &mut sino,
            &table,
            0.15,
            SolverConfig::default(),
            &RefineConfig::default(),
        )
        .unwrap();
        // The tightest constraint the refined solution still meets:
        // recovering any load-bearing shield there must violate and roll
        // back.
        let worst = check(&circuit, &grid, &routes, &sino, &table, 0.0)
            .worst_net()
            .map(|(_, v)| v)
            .expect("some coupling remains");
        let vth = worst + 1e-6;
        let mut tracker = LskTracker::new(&circuit, &grid, &routes, &sino, &table, vth);
        assert!(tracker.is_clean(), "vth sits above the worst voltage");
        let solver = SinoSolver::new(SolverConfig::default());
        let mut engines = RegionEngines::default();
        let mut snap = DeltaSnapshot::new();
        let mut stats = RefineStats::default();
        let mut rejected = 0;
        for (r, dir) in sino.keys() {
            if sino.solution(r, dir).unwrap().layout.num_shields() == 0 {
                continue;
            }
            let budgets_before = budgets.clone();
            let sino_before = sino.clone();
            let severity_before = tracker.nets_by_severity();
            let outcome = try_recover_shield(
                &mut budgets,
                &mut sino,
                &mut tracker,
                &table,
                &solver,
                &mut engines,
                &mut snap,
                r,
                dir,
                &mut stats,
            )
            .unwrap();
            match outcome {
                Recovery::Rejected => {
                    rejected += 1;
                    assert_eq!(budgets, budgets_before, "budgets leaked at {r} {dir:?}");
                    assert_eq!(sino, sino_before, "solutions leaked at {r} {dir:?}");
                    assert_eq!(
                        tracker.nets_by_severity(),
                        severity_before,
                        "tracker leaked at {r} {dir:?}"
                    );
                    tracker.oracle_check(&circuit, &grid, &routes, &sino, &table);
                }
                Recovery::NoCandidate => {
                    assert_eq!(budgets, budgets_before);
                    assert_eq!(sino, sino_before);
                }
                Recovery::Recovered => {}
            }
        }
        assert!(
            rejected > 0,
            "scenario produced no rejected recovery; tighten vth"
        );
    }
}
