//! Cached LSK violation tracking for the incremental Phase III pass.
//!
//! The seed pass re-derives everything per recheck: [`check_net`] walks
//! the route tree (BFS region path), re-scans the edge list for per-region
//! lengths and re-resolves every coupling through two hash lookups — per
//! sink, per region, per edit. But Phase III never changes the routes:
//! the region paths, the per-region lengths and the set of segments each
//! sink's LSK sum draws from are all fixed at entry. [`LskTracker`]
//! computes them once and caches, per sink, the flat term list
//! `(lⱼ, Kᵢʲ)` of paper Eq. (1) in the exact order [`sink_lsk`] iterates
//! it, plus a reverse index `(region, dir) → terms`. A region re-solve
//! then patches only the crossing nets' sums:
//! [`LskTracker::region_updated`] overwrites the affected `K` entries and
//! re-sums only the dirtied sinks — O(crossing segments + dirty-sink path
//! terms), with no tree walks and no hash lookups per region.
//!
//! # Bitwise-equality contract
//!
//! Every cached value is **bit-identical** to the from-scratch
//! [`check`]/[`check_net`] walks, not merely close: dirtied sinks are
//! re-summed over the cached term list in the exact iteration order of
//! [`sink_lsk`] (no running-delta float updates, which would drift), so
//! the f64 rounding sequence — and therefore every looked-up voltage and
//! every severity comparison downstream — reproduces the seed pass
//! exactly. `cfg(debug_assertions)` builds verify the full tracker state
//! against a fresh [`check`] via [`LskTracker::oracle_check`] after every
//! region edit of the incremental pass; the `refine_equivalence` property
//! suite drives random edit sequences against the same oracle in any
//! build.
//!
//! [`check`]: crate::violations::check
//! [`check_net`]: crate::violations::check_net
//! [`sink_lsk`]: crate::violations::sink_lsk

use crate::phase2::RegionSino;
use crate::violations::SinkViolation;
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, RouteSet};
use gsino_lsk::table::NoiseTable;
use std::collections::{BinaryHeap, HashMap};

/// One cached sink: its net, its index within the net, its term range and
/// the current LSK/voltage.
#[derive(Debug, Clone)]
struct SinkState {
    net: NetId,
    /// Sink index within the net (0 = first sink).
    sink: u32,
    /// `(offset, len)` into the flat term arrays.
    terms: (u32, u32),
    lsk: f64,
    voltage: f64,
}

/// One entry of the `(region, dir) → terms` reverse index: which term of
/// which sink a region re-solve patches, and from which segment of the
/// region's coupling vector the new value is read.
#[derive(Debug, Clone, Copy)]
struct SegmentRef {
    /// Index into [`LskTracker::sinks`].
    sink: u32,
    /// Absolute index into the flat term arrays.
    term: u32,
    /// Segment index within the region's `k` vector.
    seg: u32,
}

/// Incrementally maintained per-sink LSK values and per-net violation
/// severities of one routing solution — the ground-truth mirror of
/// [`check`](crate::violations::check) under region re-solves.
#[derive(Debug, Clone)]
pub struct LskTracker {
    vth: f64,
    /// All tracked sinks, in `check`'s iteration order (circuit net order,
    /// then sink order).
    sinks: Vec<SinkState>,
    /// Flat per-sink term lengths `lⱼ` (fixed: routes never change).
    term_len: Vec<f64>,
    /// Flat per-sink term couplings `Kᵢʲ` (patched per region re-solve).
    term_k: Vec<f64>,
    /// Reverse index: the terms a `(region, dir)` re-solve can change.
    by_segment: HashMap<(RegionIdx, Dir), Vec<SegmentRef>>,
    /// `net → contiguous range into sinks`.
    net_range: HashMap<NetId, (u32, u32)>,
    /// Ground truth: worst violating voltage per net (bit-identical to
    /// `check`'s per-net map).
    worst: HashMap<NetId, f64>,
    /// Scratch: sinks dirtied by the update in flight.
    dirty: Vec<u32>,
    /// Scratch: nets owning dirtied sinks.
    dirty_nets: Vec<NetId>,
}

impl LskTracker {
    /// Builds the tracker from the current solution state — the only
    /// full-circuit walk; everything after is patched per region edit.
    ///
    /// Nets without a route, or with a trivial (edge-free) route, have no
    /// segments and can never violate; they are not tracked, mirroring
    /// [`check_net`](crate::violations::check_net)'s empty-route shortcut.
    pub fn new(
        circuit: &Circuit,
        grid: &RegionGrid,
        routes: &RouteSet,
        sino: &RegionSino,
        table: &NoiseTable,
        vth: f64,
    ) -> Self {
        let mut t = LskTracker {
            vth,
            sinks: Vec::new(),
            term_len: Vec::new(),
            term_k: Vec::new(),
            by_segment: HashMap::new(),
            net_range: HashMap::new(),
            worst: HashMap::new(),
            dirty: Vec::new(),
            dirty_nets: Vec::new(),
        };
        for net in circuit.nets() {
            let route = match routes.get(net.id()) {
                Some(r) => r,
                None => continue,
            };
            if route.edges().is_empty() {
                continue;
            }
            let root = grid.region_of(net.source());
            let first_sink = t.sinks.len() as u32;
            for (sink_index, sink) in net.sinks().iter().enumerate() {
                let sink_region = grid.region_of(*sink);
                let path = match route.path(root, sink_region) {
                    Some(p) => p,
                    None => route.regions(),
                };
                let offset = t.term_len.len() as u32;
                for &r in &path {
                    let (lh, lv) = route.length_in_region(grid, r);
                    for (dir, len) in [(Dir::H, lh), (Dir::V, lv)] {
                        let term = t.term_len.len() as u32;
                        // Register the term only if the net owns a segment
                        // here — only those couplings can ever change; the
                        // rest stay 0.0 forever, exactly like `sink_lsk`'s
                        // `unwrap_or(0.0)`.
                        let k = match sino
                            .solution(r, dir)
                            .and_then(|sol| sol.index_of(net.id()).map(|i| (sol.k[i], i)))
                        {
                            Some((k, seg)) => {
                                t.by_segment.entry((r, dir)).or_default().push(SegmentRef {
                                    sink: t.sinks.len() as u32,
                                    term,
                                    seg: seg as u32,
                                });
                                k
                            }
                            None => 0.0,
                        };
                        t.term_len.push(len);
                        t.term_k.push(k);
                    }
                }
                let len = t.term_len.len() as u32 - offset;
                let lsk: f64 = (offset..offset + len)
                    .map(|i| t.term_len[i as usize] * t.term_k[i as usize])
                    .sum();
                t.sinks.push(SinkState {
                    net: net.id(),
                    sink: sink_index as u32,
                    terms: (offset, len),
                    lsk,
                    voltage: table.voltage(lsk),
                });
            }
            t.net_range
                .insert(net.id(), (first_sink, t.sinks.len() as u32 - first_sink));
            t.refresh_net(net.id());
        }
        t
    }

    /// The constraint voltage the tracker flags against.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Patches every cached term the re-solved `(region, dir)` feeds and
    /// re-sums the dirtied sinks. `k` is the region's refreshed coupling
    /// vector (`RegionSolution::k`), indexed by segment.
    pub fn region_updated(&mut self, region: RegionIdx, dir: Dir, k: &[f64], table: &NoiseTable) {
        self.dirty.clear();
        self.dirty_nets.clear();
        let Some(entries) = self.by_segment.get(&(region, dir)) else {
            return;
        };
        for e in entries {
            let nk = k[e.seg as usize];
            // Bitwise-unchanged couplings cannot change any sum; skipping
            // them is exact, not approximate.
            if self.term_k[e.term as usize].to_bits() != nk.to_bits() {
                self.term_k[e.term as usize] = nk;
                self.dirty.push(e.sink);
            }
        }
        for i in 0..self.dirty.len() {
            let s = self.dirty[i] as usize;
            let (offset, len) = self.sinks[s].terms;
            // Full re-sum in `sink_lsk`'s term order — never a running
            // delta, so the f64 rounding matches a fresh walk bit for bit.
            let lsk: f64 = (offset..offset + len)
                .map(|t| self.term_len[t as usize] * self.term_k[t as usize])
                .sum();
            let st = &mut self.sinks[s];
            st.lsk = lsk;
            st.voltage = table.voltage(lsk);
            if !self.dirty_nets.contains(&st.net) {
                self.dirty_nets.push(st.net);
            }
        }
        for i in 0..self.dirty_nets.len() {
            self.refresh_net(self.dirty_nets[i]);
        }
    }

    /// Recomputes one net's worst violating voltage from its cached sinks
    /// (the same max-fold as `check`'s per-net accumulation).
    fn refresh_net(&mut self, net: NetId) {
        let Some(&(start, len)) = self.net_range.get(&net) else {
            return;
        };
        let mut worst: Option<f64> = None;
        for s in start..start + len {
            let v = self.sinks[s as usize].voltage;
            if v > self.vth + 1e-9 {
                worst = Some(worst.map_or(v, |w| w.max(v)));
            }
        }
        match worst {
            Some(w) => {
                self.worst.insert(net, w);
            }
            None => {
                self.worst.remove(&net);
            }
        }
    }

    /// Whether no tracked net violates — bit-identical to
    /// [`check`](crate::violations::check)`.is_clean()`.
    pub fn is_clean(&self) -> bool {
        self.worst.is_empty()
    }

    /// Whether one net is violation-free — the cached equivalent of
    /// [`check_net`](crate::violations::check_net)`.is_empty()`.
    pub fn net_is_clean(&self, net: NetId) -> bool {
        !self.worst.contains_key(&net)
    }

    /// The worst violating voltage of a net, if it violates.
    pub fn net_worst(&self, net: NetId) -> Option<f64> {
        self.worst.get(&net).copied()
    }

    /// Number of violating nets.
    pub fn violating_nets(&self) -> usize {
        self.worst.len()
    }

    /// Violating nets, most severe first, ties broken by ascending net id —
    /// the exact order of
    /// [`ViolationReport::nets_by_severity`](crate::violations::ViolationReport::nets_by_severity).
    pub fn nets_by_severity(&self) -> Vec<(NetId, f64)> {
        let mut v: Vec<(NetId, f64)> = self.worst.iter().map(|(&n, &x)| (n, x)).collect();
        v.sort_by(|a, b| {
            // invariant: tracked voltages come from the noise table, which
            // is finite for finite LSK inputs.
            b.1.partial_cmp(&a.1)
                .expect("finite voltages")
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }

    /// All violating sinks in `check`'s report order (circuit net order,
    /// then sink order) — for oracle comparison against
    /// [`check`](crate::violations::check)`.sinks`.
    pub fn sink_violations(&self) -> Vec<SinkViolation> {
        self.sinks
            .iter()
            .filter(|s| s.voltage > self.vth + 1e-9)
            .map(|s| SinkViolation {
                net: s.net,
                sink: s.sink as usize,
                lsk: s.lsk,
                voltage: s.voltage,
            })
            .collect()
    }

    /// Debug oracle: the full tracker state must be bit-identical to a
    /// from-scratch [`check`](crate::violations::check) of the current
    /// solution.
    ///
    /// # Panics
    ///
    /// Panics if any cached value diverged.
    pub fn oracle_check(
        &self,
        circuit: &Circuit,
        grid: &RegionGrid,
        routes: &RouteSet,
        sino: &RegionSino,
        table: &NoiseTable,
    ) {
        let report = crate::violations::check(circuit, grid, routes, sino, table, self.vth);
        assert_eq!(
            self.nets_by_severity(),
            report.nets_by_severity(),
            "LskTracker severity diverged from check"
        );
        assert_eq!(
            self.sink_violations(),
            report.sinks,
            "LskTracker sink violations diverged from check"
        );
    }
}

/// Pass 1's work queue: the severity map plus a lazy-deletion max-heap
/// replacing the seed pass's O(violating nets) full-map scan per pick.
///
/// Ordering: highest voltage first, ties broken by **ascending net id** —
/// the exact tie-break of the seed pass's `max_by` scan (and of
/// [`ViolationReport::nets_by_severity`]), so both engines pick the same
/// net when voltages are equal. See `severity_ordering` in the module
/// tests.
///
/// Note the queue is *not* ground truth: like the seed pass's severity
/// map, a net dropped via [`SeverityQueue::remove`] (fixed or given up on)
/// stays out until a later region edit touches it again through
/// [`SeverityQueue::set`].
///
/// [`ViolationReport::nets_by_severity`]: crate::violations::ViolationReport::nets_by_severity
#[derive(Debug, Default)]
pub struct SeverityQueue {
    map: HashMap<NetId, f64>,
    heap: BinaryHeap<SeverityEntry>,
}

#[derive(Debug, Clone, Copy)]
struct SeverityEntry {
    voltage: f64,
    net: NetId,
}

impl Ord for SeverityEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // invariant: severity-queue voltages are finite (noise table).
        self.voltage
            .partial_cmp(&other.voltage)
            .expect("finite voltages")
            .then_with(|| other.net.cmp(&self.net))
    }
}

impl PartialOrd for SeverityEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for SeverityEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for SeverityEntry {}

impl SeverityQueue {
    /// Seeds the queue (typically from [`LskTracker::nets_by_severity`]).
    pub fn new(initial: &[(NetId, f64)]) -> Self {
        let mut q = SeverityQueue::default();
        for &(net, voltage) in initial {
            q.set(net, Some(voltage));
        }
        q
    }

    /// Updates one net's severity: `Some` (re-)enqueues it, `None` drops
    /// it — mirroring the seed pass's per-affected-net insert/remove.
    pub fn set(&mut self, net: NetId, worst: Option<f64>) {
        match worst {
            Some(voltage) => {
                self.map.insert(net, voltage);
                self.heap.push(SeverityEntry { voltage, net });
            }
            None => {
                self.map.remove(&net);
            }
        }
    }

    /// Drops a net from the queue (processed, fixed or given up on).
    pub fn remove(&mut self, net: NetId) {
        self.map.remove(&net);
    }

    /// The most severe queued net (highest voltage, then smallest id), or
    /// `None` when the queue is empty. Stale heap entries are discarded
    /// lazily; a returned entry always matches the live map bitwise.
    pub fn pick(&mut self) -> Option<NetId> {
        while let Some(top) = self.heap.peek() {
            match self.map.get(&top.net) {
                Some(v) if v.to_bits() == top.voltage.to_bits() => return Some(top.net),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Number of queued nets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_voltage_then_ascending_net_id() {
        let mut q = SeverityQueue::new(&[(7, 0.5), (3, 0.5), (9, 0.75), (1, 0.25)]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pick(), Some(9));
        q.remove(9);
        // Equal voltages: the smaller net id wins, exactly like
        // `nets_by_severity`'s (desc voltage, asc id) order.
        assert_eq!(q.pick(), Some(3));
        q.remove(3);
        assert_eq!(q.pick(), Some(7));
        q.remove(7);
        assert_eq!(q.pick(), Some(1));
        q.remove(1);
        assert_eq!(q.pick(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_entries_are_skipped_and_reinsertion_works() {
        let mut q = SeverityQueue::new(&[(2, 0.9), (5, 0.4)]);
        // Net 2's severity drops below net 5's: the stale 0.9 entry must
        // not win.
        q.set(2, Some(0.3));
        assert_eq!(q.pick(), Some(5));
        // Dropping and re-adding with the old voltage revalidates the old
        // heap entry — still correct, because it matches the map again.
        q.set(2, None);
        assert_eq!(q.pick(), Some(5));
        q.set(2, Some(0.9));
        assert_eq!(q.pick(), Some(2));
    }
}
