//! The seed (pre-tracker) Phase III pass, preserved verbatim as the
//! correctness and performance baseline for the incremental engine.
//!
//! Every budget tweak here re-solves the touched region from scratch and
//! re-walks the full route of every crossing net per recheck
//! ([`check_net`] recomputes the region path, per-region lengths and
//! coupling lookups every time), pass 1 re-scans its whole severity map
//! per outer iteration, and pass 2 clones the entire [`RegionSolution`]
//! (including the O(n²) sensitivity matrix) per recovery attempt — the
//! from-scratch hot paths the incremental pass in [`super`] replaced with
//! the cached [`super::tracker::LskTracker`], the severity heap and the
//! [`gsino_sino::delta::DeltaEval`] transaction API. The incremental pass
//! must stay **bit-identical** to this module: same final [`Budgets`],
//! same [`crate::phase2::RegionSino`], same [`RefineStats`]. That contract
//! is enforced by the `refine_equivalence` property suite, the debug-build
//! full-`check` oracle inside the incremental pass, and the
//! `phase_runtime` bench.
//!
//! Nothing in this module is used by any production flow.
//!
//! [`RegionSolution`]: crate::phase2::RegionSolution

use super::{RefineConfig, RefineStats};
use crate::budget::Budgets;
use crate::phase2::RegionSino;
use crate::violations::{check, check_net};
use crate::Result;
use gsino_grid::net::Circuit;
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, RouteSet};
use gsino_lsk::table::NoiseTable;
use gsino_sino::solver::{SinoSolver, SolverConfig};
use std::collections::HashSet;

/// Runs both seed passes, mutating budgets and region solutions in place.
///
/// # Errors
///
/// Propagates SINO solver errors (internal-invariant failures only).
#[allow(clippy::too_many_arguments)]
pub fn refine(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    vth: f64,
    solver: SolverConfig,
    config: &RefineConfig,
) -> Result<RefineStats> {
    let mut stats = RefineStats::default();
    pass1(
        circuit, grid, routes, budgets, sino, table, vth, solver, config, &mut stats,
    )?;
    stats.clean = check(circuit, grid, routes, sino, table, vth).is_clean();
    if config.enable_pass2 && stats.clean {
        pass2(
            circuit, grid, routes, budgets, sino, table, vth, solver, config, &mut stats,
        )?;
    }
    Ok(stats)
}

/// Pass 1: eliminate crosstalk violations.
///
/// The violation report is maintained incrementally: re-solving one region
/// only changes the coupling of the nets crossing it, so only those nets
/// are rechecked — this is what keeps Phase III cheap relative to the ID
/// routing phase (paper §5).
#[allow(clippy::too_many_arguments)]
fn pass1(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    vth: f64,
    solver: SolverConfig,
    config: &RefineConfig,
    stats: &mut RefineStats,
) -> Result<()> {
    let solver = SinoSolver::new(solver);
    let mut severity: std::collections::HashMap<gsino_grid::net::NetId, f64> =
        check(circuit, grid, routes, sino, table, vth)
            .nets_by_severity()
            .into_iter()
            .collect();
    for _ in 0..config.max_pass1_iters {
        let net_id = match severity.iter().max_by(|a, b| {
            // invariant: severity voltages come from the noise table and
            // are finite.
            a.1.partial_cmp(b.1)
                .expect("finite")
                .then_with(|| b.0.cmp(a.0))
        }) {
            Some((&n, _)) => n,
            None => return Ok(()),
        };
        stats.pass1_nets += 1;
        // invariant: the severity map was built by scoring routed nets.
        let net = circuit.net(net_id).expect("violating net exists");
        let route = routes.get(net_id).expect("violating net is routed");
        for _ in 0..config.max_inner_iters {
            if check_net(grid, route, sino, table, vth, net).is_empty() {
                break;
            }
            // Candidate segments of this net, least congested region first
            // (paper: "the least congested routing region through which Ni
            // is routed"), skipping segments that already have K = 0.
            let mut candidates: Vec<(f64, RegionIdx, Dir)> = Vec::new();
            for r in route.regions() {
                for dir in [Dir::H, Dir::V] {
                    if !route.occupies(grid, r, dir) {
                        continue;
                    }
                    if let Some(sol) = sino.solution(r, dir) {
                        let k = sol.index_of(net_id).map(|i| sol.k[i]).unwrap_or(0.0);
                        if k > 1e-12 {
                            let cap = match dir {
                                Dir::H => grid.hc(),
                                Dir::V => grid.vc(),
                            } as f64;
                            let density = (sol.nets.len() + sol.layout.num_shields()) as f64 / cap;
                            candidates.push((density, r, dir));
                        }
                    }
                }
            }
            candidates.sort_by(|a, b| {
                // invariant: region densities are finite ratios of counts.
                a.0.partial_cmp(&b.0)
                    .expect("finite densities")
                    .then_with(|| a.1.cmp(&b.1))
            });
            let (_, r, dir) = match candidates.first() {
                Some(&c) => c,
                // No coupled segment left to shield; the net cannot be
                // improved further in this pass.
                None => break,
            };
            // invariant: the candidate list above was enumerated from
            // this net's solved segments, so both lookups succeed.
            let sol = sino
                .solution_mut(r, dir)
                .expect("candidate came from a solution");
            let idx = sol.index_of(net_id).expect("net is in this region");
            // Tighten the segment budget so SINO must shield it harder
            // (Formula (3)'s inverse role in the paper — decide how much
            // Kth drops for one more shield). 0.7 trims K without grossly
            // over-shielding the region.
            let new_kth = (sol.k[idx] * 0.7).max(1e-9);
            sol.instance.set_kth(idx, new_kth)?;
            budgets.set(net_id, r, dir, new_kth);
            let before = sol.layout.num_shields();
            sol.layout = solver.solve(&sol.instance)?;
            sol.refresh_k();
            stats.pass1_shields_added += (sol.layout.num_shields().saturating_sub(before)) as u64;
            // Recheck only the nets whose coupling this region re-solve
            // could have changed.
            let affected = sino
                .solution(r, dir)
                .map(|s| s.nets.clone())
                .unwrap_or_default();
            for nid in affected {
                // invariant: occupants of a solved region are routed nets.
                let other = circuit.net(nid).expect("net exists");
                let oroute = routes.get(nid).expect("routed");
                let viols = check_net(grid, oroute, sino, table, vth, other);
                match viols
                    .iter()
                    .map(|v| v.voltage)
                    .fold(None::<f64>, |m, v| Some(m.map_or(v, |x| x.max(v))))
                {
                    Some(worst) => {
                        severity.insert(nid, worst);
                    }
                    None => {
                        severity.remove(&nid);
                    }
                }
            }
        }
        // The net may be unfixable within bounds (no coupled segments
        // left); drop it from the queue either way — if it is still dirty,
        // the final `check` in `refine` reports it honestly.
        if check_net(grid, route, sino, table, vth, net).is_empty() {
            severity.remove(&net_id);
        } else {
            severity.remove(&net_id);
            stats.pass1_unfixed += 1;
        }
    }
    Ok(())
}

/// Pass 2: reduce routing congestion by recovering shields where slack
/// allows.
#[allow(clippy::too_many_arguments)]
fn pass2(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    vth: f64,
    solver: SolverConfig,
    config: &RefineConfig,
    stats: &mut RefineStats,
) -> Result<()> {
    let solver = SinoSolver::new(solver);
    for _ in 0..config.pass2_sweeps {
        let mut improved = false;
        let mut visited: HashSet<(RegionIdx, Dir)> = HashSet::new();
        loop {
            // Most congested unvisited region with shields to recover.
            let mut best: Option<(f64, RegionIdx, Dir)> = None;
            for (r, dir) in sino.keys() {
                if visited.contains(&(r, dir)) {
                    continue;
                }
                // invariant: iterating `keys()` of the same solution set.
                let sol = sino.solution(r, dir).expect("key enumerated");
                if sol.layout.num_shields() == 0 {
                    continue;
                }
                let cap = match dir {
                    Dir::H => grid.hc(),
                    Dir::V => grid.vc(),
                } as f64;
                let density = (sol.nets.len() + sol.layout.num_shields()) as f64 / cap;
                if density < config.pass2_density_floor {
                    continue;
                }
                if best.is_none_or(|(d, _, _)| density > d) {
                    best = Some((density, r, dir));
                }
            }
            let (_, r, dir) = match best {
                Some(b) => b,
                None => break,
            };
            visited.insert((r, dir));
            stats.pass2_regions += 1;
            if try_recover_shield(
                circuit, grid, routes, budgets, sino, table, vth, &solver, r, dir, stats,
            )? {
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(())
}

/// Attempts to remove one shield from `(r, dir)` by raising budgets of the
/// largest-slack nets; accepts only violation-free outcomes.
#[allow(clippy::too_many_arguments)]
fn try_recover_shield(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    budgets: &mut Budgets,
    sino: &mut RegionSino,
    table: &NoiseTable,
    vth: f64,
    solver: &SinoSolver,
    r: RegionIdx,
    dir: Dir,
    stats: &mut RefineStats,
) -> Result<bool> {
    let (original, base_shields, nets) = {
        // invariant: the caller verified this key holds a solution.
        let sol = sino.solution(r, dir).expect("caller checked existence");
        (sol.clone(), sol.layout.num_shields(), sol.nets.clone())
    };
    let mut trial = original.instance.clone();
    let mut raised: Vec<usize> = Vec::new();
    for _ in 0..nets.len() {
        // Largest remaining positive slack under the current layout.
        let mut pick: Option<(f64, usize)> = None;
        for i in 0..nets.len() {
            if raised.contains(&i) {
                continue;
            }
            let slack = trial.segment(i).kth - original.k[i];
            if slack > 1e-12 && pick.is_none_or(|(s, _)| slack > s) {
                pick = Some((slack, i));
            }
        }
        let (slack, i) = match pick {
            Some(p) => p,
            None => break,
        };
        trial.set_kth(i, trial.segment(i).kth + slack)?;
        raised.push(i);
        let layout = solver.solve(&trial)?;
        if layout.num_shields() >= base_shields {
            continue;
        }
        // Tentatively install and verify globally.
        let removed = (base_shields - layout.num_shields()) as u64;
        {
            // invariant: the key held a solution at entry; nothing removed it.
            let sol = sino.solution_mut(r, dir).expect("exists");
            sol.instance = trial.clone();
            sol.layout = layout;
            sol.refresh_k();
        }
        let any_violation = nets.iter().any(|&nid| {
            // invariant: occupants of a solved region are routed nets.
            let net = circuit.net(nid).expect("net exists");
            let route = routes.get(nid).expect("routed");
            !check_net(grid, route, sino, table, vth, net).is_empty()
        });
        if any_violation {
            // invariant: same key as the tentative install above.
            let sol = sino.solution_mut(r, dir).expect("exists");
            *sol = original;
            return Ok(false);
        }
        for &i in &raised {
            budgets.set(nets[i], r, dir, trial.segment(i).kth);
        }
        stats.pass2_shields_removed += removed;
        return Ok(true);
    }
    Ok(false)
}
