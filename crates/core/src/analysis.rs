//! Noise-profile analysis of a routed-and-shielded solution.
//!
//! The violation report (Table 1's metric) only counts sinks above the
//! constraint; this module looks at the whole distribution — the quantity a
//! signal-integrity engineer reviews before committing a routing. Used by
//! examples and the experiment harness for sanity reporting.

use crate::phase2::RegionSino;
use crate::violations::sink_lsk;
use gsino_grid::net::Circuit;
use gsino_grid::region::RegionGrid;
use gsino_grid::route::RouteSet;
use gsino_lsk::table::NoiseTable;

/// Distribution of per-sink crosstalk voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseProfile {
    /// All sink voltages (V), ascending.
    voltages: Vec<f64>,
    /// The constraint the profile was taken against (V).
    vth: f64,
}

impl NoiseProfile {
    /// Profiles every sink of a solution.
    pub fn measure(
        circuit: &Circuit,
        grid: &RegionGrid,
        routes: &RouteSet,
        sino: &RegionSino,
        table: &NoiseTable,
        vth: f64,
    ) -> Self {
        let mut voltages = Vec::new();
        for net in circuit.nets() {
            let route = match routes.get(net.id()) {
                Some(r) if !r.edges().is_empty() => r,
                _ => continue,
            };
            for sink in 0..net.sinks().len() {
                let lsk = sink_lsk(grid, route, sino, net, sink);
                voltages.push(table.voltage(lsk));
            }
        }
        // invariant: `NoiseTable::voltage` is finite for finite LSK inputs.
        voltages.sort_by(|a, b| a.partial_cmp(b).expect("finite voltages"));
        NoiseProfile { voltages, vth }
    }

    /// Number of profiled sinks.
    pub fn len(&self) -> usize {
        self.voltages.len()
    }

    /// Whether no sinks were profiled.
    pub fn is_empty(&self) -> bool {
        self.voltages.is_empty()
    }

    /// The `q`-quantile voltage (V), `q` clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.voltages.is_empty() {
            return 0.0;
        }
        let idx = ((self.voltages.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize;
        self.voltages[idx]
    }

    /// Worst sink voltage (V).
    pub fn max(&self) -> f64 {
        self.voltages.last().copied().unwrap_or(0.0)
    }

    /// Fraction of sinks above the constraint.
    pub fn violating_fraction(&self) -> f64 {
        if self.voltages.is_empty() {
            return 0.0;
        }
        let above = self.voltages.partition_point(|&v| v <= self.vth + 1e-9);
        (self.voltages.len() - above) as f64 / self.voltages.len() as f64
    }

    /// Noise margin of the worst sink: `vth − max` (negative if violating).
    pub fn worst_margin(&self) -> f64 {
        self.vth - self.max()
    }

    /// Renders a 10-bin ASCII histogram from 0 V to `ceil`, marking the
    /// constraint bin with `<` — a quick visual for examples and reports.
    pub fn histogram(&self, ceil: f64) -> String {
        const BINS: usize = 10;
        const WIDTH: usize = 40;
        let ceil = if ceil > 0.0 { ceil } else { 0.2 };
        let mut counts = [0usize; BINS];
        for &v in &self.voltages {
            let bin = ((v / ceil) * BINS as f64) as usize;
            counts[bin.min(BINS - 1)] += 1;
        }
        let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in counts.iter().enumerate() {
            let lo = ceil * i as f64 / BINS as f64;
            let hi = ceil * (i + 1) as f64 / BINS as f64;
            let bar = "#".repeat(c * WIDTH / max_count);
            let marker = if self.vth > lo && self.vth <= hi {
                " <- vth"
            } else {
                ""
            };
            out.push_str(&format!(
                "{lo:5.3}-{hi:5.3} V |{bar:<WIDTH$}| {c}{marker}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{uniform_budgets, LengthModel};
    use crate::phase2::{solve_regions, RegionMode};
    use crate::router::{route_all, ShieldTerm, Weights};
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::sensitivity::SensitivityModel;
    use gsino_grid::tech::Technology;
    use gsino_sino::solver::SolverConfig;

    fn profile(rate: f64, mode: RegionMode) -> NoiseProfile {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(1536.0, 512.0)).unwrap();
        let nets: Vec<Net> = (0..10)
            .map(|i| {
                Net::two_pin(
                    i,
                    Point::new(8.0, 256.0 + i as f64),
                    Point::new(1500.0, 256.0 + i as f64),
                )
            })
            .collect();
        let circuit = Circuit::new("p", die, nets).unwrap();
        let tech = Technology::itrs_100nm();
        let grid = RegionGrid::new(&circuit, &tech, 64.0).unwrap();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let table = NoiseTable::calibrated(&tech);
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::RoutedPath,
        )
        .unwrap();
        let sino = solve_regions(
            &grid,
            &routes,
            &budgets,
            &SensitivityModel::new(rate, 3),
            SolverConfig::default(),
            mode,
            1,
        )
        .unwrap();
        NoiseProfile::measure(&circuit, &grid, &routes, &sino, &table, 0.15)
    }

    #[test]
    fn profile_counts_every_sink() {
        let p = profile(0.5, RegionMode::Sino);
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
    }

    #[test]
    fn sino_profile_is_within_constraint() {
        let p = profile(0.8, RegionMode::Sino);
        assert!(p.max() <= 0.15 + 1e-9, "max {}", p.max());
        assert_eq!(p.violating_fraction(), 0.0);
        assert!(p.worst_margin() >= -1e-9);
    }

    #[test]
    fn order_only_profile_is_noisier() {
        let sino = profile(0.8, RegionMode::Sino);
        let bare = profile(0.8, RegionMode::OrderOnly);
        assert!(bare.max() > sino.max());
        assert!(bare.quantile(0.9) >= sino.quantile(0.9));
    }

    #[test]
    fn quantiles_are_monotone() {
        let p = profile(0.5, RegionMode::OrderOnly);
        assert!(p.quantile(0.0) <= p.quantile(0.5));
        assert!(p.quantile(0.5) <= p.quantile(1.0));
        assert_eq!(p.quantile(1.0), p.max());
    }

    #[test]
    fn histogram_renders_bins_and_marker() {
        let p = profile(0.8, RegionMode::OrderOnly);
        let h = p.histogram(0.2);
        assert_eq!(h.lines().count(), 10);
        assert!(h.contains("<- vth"), "{h}");
    }

    #[test]
    fn empty_profile_behaves() {
        let p = NoiseProfile {
            voltages: Vec::new(),
            vth: 0.15,
        };
        assert!(p.is_empty());
        assert_eq!(p.max(), 0.0);
        assert_eq!(p.quantile(0.5), 0.0);
        assert_eq!(p.violating_fraction(), 0.0);
    }
}
