//! Phase I: uniform crosstalk-budget partitioning (paper §3.1).
//!
//! The sink's voltage constraint maps through the noise table to an LSK
//! bound; dividing by the source→sink wire-length estimate `Le` yields the
//! per-segment coupling budget `Kth`. Segments shared by several sinks take
//! the minimum budget. GSINO budgets before routing with the Manhattan
//! estimate; the iSINO baseline budgets after routing with actual path
//! lengths (which is why it never violates but over-shields).

use crate::Result;
use gsino_grid::net::{Circuit, NetId};
use gsino_grid::region::{RegionGrid, RegionIdx};
use gsino_grid::route::{Dir, RouteSet};
use gsino_lsk::budget::kth_for_le;
use gsino_lsk::table::NoiseTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One segment budget: `((net, region, dir), Kth)` — the key/value unit
/// of [`Budgets`] and the element of per-net entry lists.
pub type BudgetEntry = ((NetId, RegionIdx, Dir), f64);

/// How the LSK bound is split along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// The paper's Phase I: every segment on the path gets `LSK/Le`.
    #[default]
    Uniform,
    /// The §5 future-work direction, implemented here as an extension:
    /// congested regions (little track headroom) receive *looser* coupling
    /// budgets — shields are expensive there — while roomy regions absorb
    /// tighter budgets, still meeting `Σ lⱼ·Kthⱼ ≤ LSK`.
    CongestionWeighted,
}

/// How `Le` (the source→sink length) is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthModel {
    /// Manhattan distance between the pins — Phase I's pre-routing
    /// estimate. Detours make the real length longer, which is what Phase
    /// III exists to repair.
    Manhattan,
    /// The routed path length through the region graph — available only
    /// after routing; guarantees `Σ lⱼ·Kth ≤ LSK_bound`.
    RoutedPath,
}

/// Per-(net, region, direction) coupling budgets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Budgets {
    map: HashMap<(NetId, RegionIdx, Dir), f64>,
}

impl Budgets {
    /// The budget of a net's segment, if that segment exists.
    pub fn kth(&self, net: NetId, region: RegionIdx, dir: Dir) -> Option<f64> {
        self.map.get(&(net, region, dir)).copied()
    }

    /// Overrides one segment budget (Phase III re-budgeting).
    pub fn set(&mut self, net: NetId, region: RegionIdx, dir: Dir, kth: f64) {
        self.map.insert((net, region, dir), kth);
    }

    /// Removes one segment budget, returning the displaced value — the
    /// undo-log primitive ECO sessions pair with [`Self::set`].
    pub fn remove(&mut self, net: NetId, region: RegionIdx, dir: Dir) -> Option<f64> {
        self.map.remove(&(net, region, dir))
    }

    /// Every entry of one net, sorted by `(region, dir)` — the diff unit
    /// for incremental re-budgeting (per-net entries are independent under
    /// the uniform policy, see [`net_budget_entries`]).
    pub fn net_entries(&self, net: NetId) -> Vec<BudgetEntry> {
        let mut out: Vec<_> = self
            .map
            .iter()
            .filter(|((n, _, _), _)| *n == net)
            .map(|(k, v)| (*k, *v))
            .collect();
        out.sort_by_key(|((_, r, d), _)| (*r, matches!(d, Dir::V)));
        out
    }

    /// Number of budgeted segments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no segments are budgeted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `((net, region, dir), kth)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(NetId, RegionIdx, Dir), &f64)> {
        self.map.iter()
    }

    /// Median budget — the representative `Kth` used to fit Formula (3).
    pub fn median_kth(&self) -> Option<f64> {
        if self.map.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.map.values().copied().collect();
        // invariant: budgeting replaces infinite Kth with 1e9, so every
        // stored budget is finite and the comparator is total.
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite budgets"));
        Some(v[v.len() / 2])
    }
}

/// Computes uniform budgets for every routed segment, with one crosstalk
/// constraint shared by all sinks (the configuration the paper evaluates).
///
/// # Errors
///
/// Propagates [`gsino_lsk::LskError`] for out-of-range constraints.
pub fn uniform_budgets(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    table: &NoiseTable,
    vth: f64,
    length_model: LengthModel,
) -> Result<Budgets> {
    budgets_with_constraints(circuit, grid, routes, table, &|_, _| vth, length_model)
}

/// Congestion-weighted budgets (the [`BudgetPolicy::CongestionWeighted`]
/// extension). For a path with per-region lengths `lⱼ` and weights
/// `wⱼ = 1/headroomⱼ`, each segment receives
/// `Kthⱼ = LSK · wⱼ / Σ lᵢ·wᵢ`, which satisfies the same end-to-end bound
/// as the uniform split but shifts shielding work toward regions that can
/// afford it.
///
/// # Errors
///
/// Propagates [`gsino_lsk::LskError`] for out-of-range constraints.
pub fn congestion_weighted_budgets(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    usage: &gsino_grid::usage::TrackUsage,
    table: &NoiseTable,
    vth: f64,
    length_model: LengthModel,
) -> Result<Budgets> {
    let mut budgets = Budgets::default();
    let min_le = (grid.tile_w().min(grid.tile_h())) / 2.0;
    let lsk_bound_of = |le: f64| -> Result<f64> { Ok(kth_for_le(table, vth, le)? * le) };
    let weight = |r: RegionIdx, dir: Dir| -> f64 {
        let headroom = (usage.capacity(dir) as f64 - usage.used(r, dir) as f64).max(1.0);
        1.0 / headroom
    };
    for net in circuit.nets() {
        let route = match routes.get(net.id()) {
            Some(r) => r,
            None => continue,
        };
        if route.edges().is_empty() {
            continue;
        }
        let root = grid.region_of(net.source());
        for sink in net.sinks() {
            let sink_region = grid.region_of(*sink);
            let path = match route.path(root, sink_region) {
                Some(p) => p,
                None => route.regions(),
            };
            let le = match length_model {
                LengthModel::Manhattan => net.source().manhattan(*sink),
                LengthModel::RoutedPath => path
                    .windows(2)
                    .map(|w| grid.center_distance(w[0], w[1]))
                    .sum::<f64>(),
            }
            .max(min_le);
            let lsk_bound = lsk_bound_of(le)?;
            // Normalizer Σ lᵢ·wᵢ over the occupied segments of the path.
            let mut norm = 0.0;
            for &r in &path {
                let (lh, lv) = route.length_in_region(grid, r);
                if route.occupies(grid, r, Dir::H) {
                    norm += lh * weight(r, Dir::H);
                }
                if route.occupies(grid, r, Dir::V) {
                    norm += lv * weight(r, Dir::V);
                }
            }
            if norm <= 0.0 {
                continue;
            }
            for &r in &path {
                for dir in [Dir::H, Dir::V] {
                    if route.occupies(grid, r, dir) {
                        let kth = (lsk_bound * weight(r, dir) / norm).max(1e-9);
                        let entry = budgets
                            .map
                            .entry((net.id(), r, dir))
                            .or_insert(f64::INFINITY);
                        *entry = entry.min(kth);
                    }
                }
            }
        }
    }
    for v in budgets.map.values_mut() {
        if !v.is_finite() {
            *v = 1e9;
        }
    }
    Ok(budgets)
}

/// Non-uniform constraints (paper §3.1: "Both our algorithm and program
/// implementation, however, can handle non-uniform crosstalk constraints"):
/// `vth_of(net, sink_index)` supplies each sink's own noise ceiling.
///
/// # Errors
///
/// Propagates [`gsino_lsk::LskError`] for out-of-range constraints.
pub fn budgets_with_constraints(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
    table: &NoiseTable,
    vth_of: &dyn Fn(NetId, usize) -> f64,
    length_model: LengthModel,
) -> Result<Budgets> {
    let mut budgets = Budgets::default();
    for net in circuit.nets() {
        let route = match routes.get(net.id()) {
            Some(r) => r,
            None => continue,
        };
        // Per-net entries are disjoint across nets (every key carries the
        // net id), so extending the map per net reproduces the historic
        // single-loop result bit for bit.
        for (key, kth) in net_budget_entries(net, grid, route, table, vth_of, length_model)? {
            budgets.map.insert(key, kth);
        }
    }
    Ok(budgets)
}

/// The budget entries one routed net contributes — the loop body of
/// [`budgets_with_constraints`], factored out because under the uniform
/// policy a net's entries depend only on *its own* pins and route. That
/// independence is what lets an ECO session re-budget exactly the nets an
/// edit touched and reuse every other entry bitwise. (The
/// congestion-weighted policy reads global track usage and deliberately
/// has no such per-net form.)
///
/// Returns the entries sorted by `(region, dir)`; nets without routed
/// edges contribute nothing.
///
/// # Errors
///
/// Propagates [`gsino_lsk::LskError`] for out-of-range constraints.
pub fn net_budget_entries(
    net: &gsino_grid::net::Net,
    grid: &RegionGrid,
    route: &gsino_grid::route::RouteTree,
    table: &NoiseTable,
    vth_of: &dyn Fn(NetId, usize) -> f64,
    length_model: LengthModel,
) -> Result<Vec<BudgetEntry>> {
    let mut entries: HashMap<(NetId, RegionIdx, Dir), f64> = HashMap::new();
    let min_le = (grid.tile_w().min(grid.tile_h())) / 2.0;
    if route.edges().is_empty() {
        return Ok(Vec::new());
    }
    let root = grid.region_of(net.source());
    for (sink_index, sink) in net.sinks().iter().enumerate() {
        let sink_region = grid.region_of(*sink);
        let path = match route.path(root, sink_region) {
            Some(p) => p,
            None => route.regions(),
        };
        let le = match length_model {
            LengthModel::Manhattan => net.source().manhattan(*sink),
            LengthModel::RoutedPath => path
                .windows(2)
                .map(|w| grid.center_distance(w[0], w[1]))
                .sum::<f64>(),
        }
        .max(min_le);
        let kth_sink = kth_for_le(table, vth_of(net.id(), sink_index), le)?;
        for &r in &path {
            for dir in [Dir::H, Dir::V] {
                if route.occupies(grid, r, dir) {
                    let key = (net.id(), r, dir);
                    let entry = entries.entry(key).or_insert(f64::INFINITY);
                    *entry = entry.min(kth_sink);
                }
            }
        }
    }
    // Defensive cover: any occupied segment missed by all sink paths
    // takes the tightest budget of the net.
    let net_min = net
        .sinks()
        .iter()
        .map(|s| net.source().manhattan(*s).max(min_le))
        .fold(f64::INFINITY, f64::min);
    if net_min.is_finite() {
        let vth_min = (0..net.sinks().len())
            .map(|i| vth_of(net.id(), i))
            .fold(f64::INFINITY, f64::min);
        let fallback = kth_for_le(table, vth_min, net_min)?;
        for r in route.regions() {
            for dir in [Dir::H, Dir::V] {
                if route.occupies(grid, r, dir) {
                    entries.entry((net.id(), r, dir)).or_insert(fallback);
                }
            }
        }
    }
    // Replace any residual infinities (nets with zero-length sink paths).
    let mut out: Vec<_> = entries
        .into_iter()
        .map(|(k, v)| (k, if v.is_finite() { v } else { 1e9 }))
        .collect();
    out.sort_by_key(|((_, r, d), _)| (*r, matches!(d, Dir::V)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsino_core_test_util::*;

    /// Shared test scaffolding for the core crate's unit tests.
    mod gsino_core_test_util {
        pub use crate::router::{route_all, ShieldTerm, Weights};
        pub use gsino_grid::geom::{Point, Rect};
        pub use gsino_grid::net::{Circuit, Net};
        pub use gsino_grid::region::RegionGrid;
        pub use gsino_grid::tech::Technology;
        pub use gsino_lsk::table::NoiseTable;

        pub fn straight_circuit() -> (Circuit, RegionGrid, NoiseTable) {
            let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
            let nets = vec![
                Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 32.0)),
                Net::new(
                    1,
                    vec![
                        Point::new(32.0, 300.0),
                        Point::new(600.0, 300.0),
                        Point::new(300.0, 600.0),
                    ],
                ),
            ];
            let circuit = Circuit::new("t", die, nets).unwrap();
            let tech = Technology::itrs_100nm();
            let grid = RegionGrid::new(&circuit, &tech, 64.0).unwrap();
            let table = NoiseTable::calibrated(&tech);
            (circuit, grid, table)
        }
    }

    #[test]
    fn every_occupied_segment_gets_a_budget() {
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        for route in routes.iter() {
            for r in route.regions() {
                for dir in [Dir::H, Dir::V] {
                    if route.occupies(&grid, r, dir) {
                        let kth = budgets.kth(route.net(), r, dir);
                        assert!(kth.is_some(), "missing budget net {} r {r}", route.net());
                        assert!(kth.unwrap() > 0.0);
                    }
                }
            }
        }
        assert!(!budgets.is_empty());
    }

    #[test]
    fn longer_nets_get_tighter_budgets() {
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        // Net 0 is 568 µm long; a hypothetical shorter net would budget
        // looser. Check budget matches the closed form LSK/Le.
        let lsk_bound = table.lsk_for_voltage(0.15);
        let r = routes.get(0).unwrap().regions()[1];
        let kth = budgets.kth(0, r, Dir::H).unwrap();
        assert!((kth - lsk_bound / 568.0).abs() / kth < 1e-9);
    }

    #[test]
    fn routed_path_budgets_are_no_looser() {
        // The routed path is at least as long as the Manhattan distance, so
        // RoutedPath budgets are at most the Manhattan ones.
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let manhattan = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        let routed = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::RoutedPath,
        )
        .unwrap();
        for (key, kth_routed) in routed.iter() {
            let kth_m = manhattan.kth(key.0, key.1, key.2).unwrap();
            assert!(
                *kth_routed <= kth_m * 1.3 + 1e-9,
                "routed budget wildly looser at {key:?}"
            );
        }
    }

    #[test]
    fn shared_segments_take_min_budget() {
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        // Net 1 has two sinks with different Le; its segments near the
        // source shared by both paths must carry the tighter (smaller) kth.
        let net = circuit.net(1).unwrap();
        let lsk_bound = table.lsk_for_voltage(0.15);
        let les: Vec<f64> = net
            .sinks()
            .iter()
            .map(|s| net.source().manhattan(*s))
            .collect();
        let tightest = lsk_bound / les.iter().cloned().fold(0.0, f64::max);
        let route = routes.get(1).unwrap();
        let root = grid.region_of(net.source());
        for dir in [Dir::H, Dir::V] {
            if route.occupies(&grid, root, dir) {
                let kth = budgets.kth(1, root, dir).unwrap();
                assert!(kth <= tightest + 1e-12);
            }
        }
    }

    #[test]
    fn trivial_routes_need_no_budget() {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(128.0, 128.0)).unwrap();
        let nets = vec![Net::two_pin(
            0,
            Point::new(5.0, 5.0),
            Point::new(20.0, 20.0),
        )];
        let circuit = Circuit::new("t", die, nets).unwrap();
        let tech = Technology::itrs_100nm();
        let grid = RegionGrid::new(&circuit, &tech, 64.0).unwrap();
        let table = NoiseTable::calibrated(&tech);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        assert!(budgets.is_empty());
        assert_eq!(budgets.median_kth(), None);
    }

    #[test]
    fn congestion_weighted_budgets_preserve_path_bound() {
        use gsino_grid::usage::TrackUsage;
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let mut usage = TrackUsage::from_routes(&grid, &routes);
        // Make one region on net 0's route look congested.
        let hot = routes.get(0).unwrap().regions()[2];
        usage.add_nets(hot, Dir::H, 12);
        let weighted = congestion_weighted_budgets(
            &circuit,
            &grid,
            &routes,
            &usage,
            &table,
            0.15,
            LengthModel::RoutedPath,
        )
        .unwrap();
        // End-to-end bound: Σ l·kth ≤ LSK(0.15) along the routed path.
        let net = circuit.net(0).unwrap();
        let route = routes.get(0).unwrap();
        let root = grid.region_of(net.source());
        let path = route.path(root, grid.region_of(net.sinks()[0])).unwrap();
        let le: f64 = path
            .windows(2)
            .map(|w| grid.center_distance(w[0], w[1]))
            .sum();
        let lsk_bound = table.lsk_for_voltage(0.15);
        let mut total = 0.0;
        for &r in &path {
            let (lh, _) = route.length_in_region(&grid, r);
            if let Some(kth) = weighted.kth(0, r, Dir::H) {
                total += lh * kth;
            }
        }
        let _ = le;
        assert!(
            total <= lsk_bound * 1.0001,
            "path bound {total} > {lsk_bound}"
        );
        // The congested region gets a looser budget than its neighbours.
        let cool = path.iter().copied().find(|&r| r != hot).unwrap();
        let k_hot = weighted.kth(0, hot, Dir::H).unwrap();
        let k_cool = weighted.kth(0, cool, Dir::H).unwrap();
        assert!(k_hot > k_cool, "hot {k_hot} should exceed cool {k_cool}");
    }

    #[test]
    fn non_uniform_constraints_tighten_selected_nets() {
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        // Net 0 is a clock-like net with a strict 0.10 V ceiling; others 0.15.
        let strict = budgets_with_constraints(
            &circuit,
            &grid,
            &routes,
            &table,
            &|net, _| if net == 0 { 0.10 } else { 0.15 },
            LengthModel::Manhattan,
        )
        .unwrap();
        let uniform = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        let r = routes.get(0).unwrap().regions()[1];
        let ks = strict.kth(0, r, Dir::H).unwrap();
        let ku = uniform.kth(0, r, Dir::H).unwrap();
        assert!(ks < ku, "strict {ks} must be below uniform {ku}");
        // Other nets unchanged.
        let r1 = routes.get(1).unwrap().regions()[0];
        for dir in [Dir::H, Dir::V] {
            if let (Some(a), Some(b)) = (strict.kth(1, r1, dir), uniform.kth(1, r1, dir)) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn median_kth_reported() {
        let (circuit, grid, table) = straight_circuit();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        let med = budgets.median_kth().unwrap();
        assert!(med > 0.0 && med.is_finite());
    }
}
