//! Wire-length statistics (Table 2's metric).

use gsino_grid::net::Circuit;
use gsino_grid::region::RegionGrid;
use gsino_grid::route::RouteSet;

/// Aggregate wire length of a routing solution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WirelengthStats {
    /// Total wire length over all nets (µm).
    pub total_um: f64,
    /// Average wire length per net (µm) — Table 2 reports this.
    pub mean_um: f64,
    /// Number of nets measured.
    pub nets: usize,
}

/// Computes wire-length statistics. Routed nets use their region-level tree
/// length; nets contained in one region fall back to their pin HPWL so
/// short local nets still contribute realistically.
pub fn wirelength_stats(
    circuit: &Circuit,
    grid: &RegionGrid,
    routes: &RouteSet,
) -> WirelengthStats {
    let mut total = 0.0;
    let mut count = 0usize;
    for net in circuit.nets() {
        let wl = match routes.get(net.id()) {
            Some(r) if !r.edges().is_empty() => r.wirelength(grid),
            _ => net.hpwl(),
        };
        total += wl;
        count += 1;
    }
    WirelengthStats {
        total_um: total,
        mean_um: if count == 0 {
            0.0
        } else {
            total / count as f64
        },
        nets: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route_all, ShieldTerm, Weights};
    use gsino_grid::geom::{Point, Rect};
    use gsino_grid::net::Net;
    use gsino_grid::tech::Technology;

    #[test]
    fn mixes_routed_and_local_nets() {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
        let nets = vec![
            // Routed: 9 tiles of 64 µm.
            Net::two_pin(0, Point::new(32.0, 32.0), Point::new(600.0, 32.0)),
            // Local: HPWL = 30 µm.
            Net::two_pin(1, Point::new(5.0, 5.0), Point::new(25.0, 15.0)),
        ];
        let circuit = Circuit::new("t", die, nets).unwrap();
        let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let stats = wirelength_stats(&circuit, &grid, &routes);
        assert_eq!(stats.nets, 2);
        assert!((stats.total_um - (9.0 * 64.0 + 30.0)).abs() < 1e-9);
        assert!((stats.mean_um - stats.total_um / 2.0).abs() < 1e-9);
    }
}
