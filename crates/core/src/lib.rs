//! GSINO — global routing with RLC crosstalk constraints (Ma & He, DAC
//! 2002).
//!
//! The extended global-routing problem **GSINO** decides a rectilinear
//! Steiner tree for every net *and* a simultaneous shield-insertion and
//! net-ordering (SINO) solution within every routing region, such that
//! every sink meets its RLC crosstalk constraint while wire length and
//! routing area stay small. This crate implements the paper's three-phase
//! heuristic and its two evaluation baselines:
//!
//! * [`router`] — the iterative-deletion (ID) global router (paper Fig. 1,
//!   after Cong–Preas), with the shield-aware weight of Formula (2);
//! * [`budget`] — Phase I: uniform crosstalk-budget partitioning through
//!   the LSK noise table;
//! * [`phase2`] — Phase II: per-region SINO under the partitioned budgets;
//! * [`violations`] — LSK/voltage bookkeeping per sink and the violation
//!   report (Table 1's metric);
//! * [`refine`] — Phase III: the two-pass local refinement (paper Fig. 2);
//! * [`baseline`] — ID+NO (net ordering only) and iSINO (post-routing
//!   SINO), the comparison points of Tables 1–3;
//! * [`analysis`] — per-sink noise profiles and histograms;
//! * [`pipeline`] — end-to-end flows with per-phase timings;
//! * [`metrics`] — wire-length, area and shield statistics;
//! * [`session`] — fault-tolerant transactional ECO sessions over a routed
//!   snapshot, with divergence self-checks and graceful degradation;
//! * [`service`] — the multi-session routing-service front: named
//!   sessions on thread-per-session executors, request batching,
//!   admission control and graceful shutdown;
//! * [`cancel`] — the deadline/cancellation token the phase drivers poll.
//!
//! # Example
//!
//! ```
//! use gsino_core::pipeline::{run_gsino, GsinoConfig};
//! use gsino_grid::{Circuit, Net, Point, Rect};
//!
//! # fn main() -> Result<(), gsino_core::CoreError> {
//! let die = Rect::new(Point::new(0.0, 0.0), Point::new(512.0, 512.0))?;
//! let nets: Vec<Net> = (0..40)
//!     .map(|i| {
//!         let x = 16.0 + (i as f64 * 37.0) % 480.0;
//!         let y = 16.0 + (i as f64 * 53.0) % 480.0;
//!         Net::two_pin(i, Point::new(x, y), Point::new(500.0 - x, 500.0 - y))
//!     })
//!     .collect();
//! let circuit = Circuit::new("demo", die, nets)?;
//! let outcome = run_gsino(&circuit, &GsinoConfig::default())?;
//! assert_eq!(outcome.violations.violating_nets(), 0);
//! # Ok(())
//! # }
//! ```
//!
//! # Architecture
//!
//! The pipeline-wide map — which phase this crate serves and the
//! incremental-engine contracts shared across the workspace — lives in
//! `ARCHITECTURE.md` at the repository root.

pub mod analysis;
pub mod baseline;
pub mod budget;
pub mod cancel;
pub mod metrics;
pub mod phase2;
pub mod pipeline;
pub mod refine;
pub mod router;
pub mod service;
pub mod session;
pub mod violations;

pub use baseline::{run_id_no, run_isino};
pub use cancel::CancelToken;
pub use pipeline::{run_gsino, GsinoConfig, GsinoConfigBuilder, GsinoOutcome};
pub use router::Weights;
pub use service::{
    EditReceipt, LatencySummary, NetClient, NetServer, RoutingService, ServiceConfig,
    ServiceRequest, ServiceResponse, SessionHandle, SessionSnapshot, StatsReport,
};
pub use session::{EcoEdit, EcoSession, FaultKind, FaultPlan, OracleConfig, SessionStats};
pub use violations::ViolationReport;

use std::error::Error;
use std::fmt;

/// Errors produced by the GSINO flows.
///
/// Service clients should branch on [`CoreError::kind`] (stable,
/// `match`-friendly) rather than string-matching [`fmt::Display`] output;
/// [`CoreError::is_retryable`] names the subset a well-behaved client may
/// simply retry.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CoreError {
    /// Substrate (grid/net) errors.
    Grid(gsino_grid::GridError),
    /// SINO solver errors.
    Sino(gsino_sino::SinoError),
    /// LSK model errors.
    Lsk(gsino_lsk::LskError),
    /// The router could not connect a net's terminals (should not happen on
    /// well-formed corridors; indicates an internal bug).
    RoutingFailed {
        /// The offending net.
        net: u32,
    },
    /// Configuration errors (bad constraint, bad tile size, …).
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An ECO edit or fault plan referenced an id absent from the live
    /// snapshot (stale net, out-of-range sink index, unknown region).
    UnknownId {
        /// What kind of id was looked up (`"net"`, `"sink"`, `"region"`).
        kind: &'static str,
        /// The offending id value.
        id: u64,
    },
    /// A phase driver observed a fired [`cancel::CancelToken`] and stopped
    /// cleanly; transactional callers restore their pre-edit state.
    Canceled {
        /// The phase that was interrupted.
        phase: &'static str,
    },
    /// Admission control: a [`service::RoutingService`] mailbox (or the
    /// service's session table) is at capacity; the request was rejected
    /// without being enqueued. Retry after backing off.
    Overloaded {
        /// The session whose mailbox was full, or the service name for
        /// session-table rejections.
        session: String,
        /// The capacity that was exhausted.
        capacity: usize,
    },
    /// The named session exists and cannot take this request right now
    /// (e.g. opening a session name that is already live). Retry once the
    /// holder releases the name.
    SessionBusy {
        /// The contended session name.
        session: String,
    },
    /// The named session is not (or no longer) served: it was closed,
    /// drained by shutdown, or never opened. Not retryable — the caller
    /// must re-open the session.
    SessionClosed {
        /// The session name.
        session: String,
    },
    /// A workload exceeded an index width or resource ceiling of the
    /// flat-array cores (u32 region/net/edge indices, CSR offsets). The
    /// request is deterministic — the same workload fails the same way —
    /// so this is not retryable; shrink the workload or raise the limit.
    TooLarge {
        /// What overflowed (`"regions"`, `"edges"`, `"connections"`, …).
        what: &'static str,
        /// The value that did not fit.
        value: u64,
        /// The maximum the index width admits.
        limit: u64,
    },
    /// An error received over the wire from a remote routing service,
    /// carried verbatim. When the remote kind string is one this build
    /// knows, [`CoreError::kind`] maps it back to the matching
    /// [`ErrorKind`]; unknown strings (a newer server) classify as
    /// [`ErrorKind::Remote`] and keep the transmitted retryability.
    Remote {
        /// The remote error's kind string (see [`ErrorKind::as_str`]).
        kind: String,
        /// The remote error's [`CoreError::is_retryable`] flag.
        retryable: bool,
        /// The remote error's display message.
        message: String,
    },
}

/// The stable, data-free classification of a [`CoreError`] — what service
/// clients branch on instead of string-matching display output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// [`CoreError::Grid`].
    Grid,
    /// [`CoreError::Sino`].
    Sino,
    /// [`CoreError::Lsk`].
    Lsk,
    /// [`CoreError::RoutingFailed`].
    RoutingFailed,
    /// [`CoreError::BadConfig`].
    BadConfig,
    /// [`CoreError::UnknownId`].
    UnknownId,
    /// [`CoreError::Canceled`].
    Canceled,
    /// [`CoreError::Overloaded`].
    Overloaded,
    /// [`CoreError::SessionBusy`].
    SessionBusy,
    /// [`CoreError::SessionClosed`].
    SessionClosed,
    /// [`CoreError::TooLarge`].
    TooLarge,
    /// [`CoreError::Remote`] whose kind string no known kind claims — an
    /// error forwarded by a remote peer speaking a newer vocabulary.
    Remote,
}

impl ErrorKind {
    /// The stable wire string for this kind — the `err.kind` field of the
    /// wire protocol (`PROTOCOL.md`). The strings are snake_case, never
    /// reused, and never change meaning; see [`CoreError::kind`] for the
    /// full table.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Grid => "grid",
            ErrorKind::Sino => "sino",
            ErrorKind::Lsk => "lsk",
            ErrorKind::RoutingFailed => "routing_failed",
            ErrorKind::BadConfig => "bad_config",
            ErrorKind::UnknownId => "unknown_id",
            ErrorKind::Canceled => "canceled",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::SessionBusy => "session_busy",
            ErrorKind::SessionClosed => "session_closed",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Remote => "remote",
        }
    }

    /// Parses a wire kind string back to its kind. Unknown strings (from a
    /// peer speaking a newer protocol revision) map to
    /// [`ErrorKind::Remote`] rather than failing, so old clients degrade
    /// gracefully.
    pub fn parse(s: &str) -> ErrorKind {
        match s {
            "grid" => ErrorKind::Grid,
            "sino" => ErrorKind::Sino,
            "lsk" => ErrorKind::Lsk,
            "routing_failed" => ErrorKind::RoutingFailed,
            "bad_config" => ErrorKind::BadConfig,
            "unknown_id" => ErrorKind::UnknownId,
            "canceled" => ErrorKind::Canceled,
            "overloaded" => ErrorKind::Overloaded,
            "session_busy" => ErrorKind::SessionBusy,
            "session_closed" => ErrorKind::SessionClosed,
            "too_large" => ErrorKind::TooLarge,
            _ => ErrorKind::Remote,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl CoreError {
    /// This error's stable classification.
    ///
    /// The mapping is one variant → one kind and is part of the public
    /// API contract: clients can `match` on it across versions without
    /// caring about the payload fields. The kind strings below are the
    /// wire protocol's `err.kind` vocabulary (`PROTOCOL.md`) and are
    /// pinned by a unit test — they never change meaning or casing:
    ///
    /// | Kind | Wire string | Retryable |
    /// |------|-------------|-----------|
    /// | [`ErrorKind::Grid`] | `grid` | no |
    /// | [`ErrorKind::Sino`] | `sino` | no |
    /// | [`ErrorKind::Lsk`] | `lsk` | no |
    /// | [`ErrorKind::RoutingFailed`] | `routing_failed` | no |
    /// | [`ErrorKind::BadConfig`] | `bad_config` | no |
    /// | [`ErrorKind::UnknownId`] | `unknown_id` | no |
    /// | [`ErrorKind::Canceled`] | `canceled` | yes |
    /// | [`ErrorKind::Overloaded`] | `overloaded` | yes |
    /// | [`ErrorKind::SessionBusy`] | `session_busy` | yes |
    /// | [`ErrorKind::SessionClosed`] | `session_closed` | no |
    /// | [`ErrorKind::TooLarge`] | `too_large` | no |
    /// | [`ErrorKind::Remote`] | `remote` | carried flag |
    ///
    /// A [`CoreError::Remote`] whose carried kind string is in the table
    /// classifies as that kind (`Remote` is the unknown-string fallback),
    /// and its retryability is the transmitted flag, not the table column.
    pub fn kind(&self) -> ErrorKind {
        match self {
            CoreError::Grid(_) => ErrorKind::Grid,
            CoreError::Sino(_) => ErrorKind::Sino,
            CoreError::Lsk(_) => ErrorKind::Lsk,
            CoreError::RoutingFailed { .. } => ErrorKind::RoutingFailed,
            CoreError::BadConfig { .. } => ErrorKind::BadConfig,
            CoreError::UnknownId { .. } => ErrorKind::UnknownId,
            CoreError::Canceled { .. } => ErrorKind::Canceled,
            CoreError::Overloaded { .. } => ErrorKind::Overloaded,
            CoreError::SessionBusy { .. } => ErrorKind::SessionBusy,
            CoreError::SessionClosed { .. } => ErrorKind::SessionClosed,
            CoreError::TooLarge { .. } => ErrorKind::TooLarge,
            CoreError::Remote { kind, .. } => ErrorKind::parse(kind),
        }
    }

    /// Whether a client may retry the failed request unchanged and expect
    /// it to eventually succeed.
    ///
    /// The retryable set is exactly:
    ///
    /// * [`ErrorKind::Overloaded`] — transient backpressure; the mailbox
    ///   drains as the session catches up,
    /// * [`ErrorKind::SessionBusy`] — transient name contention,
    /// * [`ErrorKind::Canceled`] — a deadline fired; the session rolled
    ///   back to its pre-batch state, so the same request can be resubmitted
    ///   with a larger budget.
    ///
    /// Everything else is deterministic — the same request fails the same
    /// way — or indicates lost state ([`ErrorKind::SessionClosed`]) that a
    /// retry cannot recover.
    ///
    /// [`CoreError::Remote`] errors report the flag the remote service
    /// transmitted, so retryability survives a wire hop even for kinds
    /// this build does not know.
    pub fn is_retryable(&self) -> bool {
        if let CoreError::Remote { retryable, .. } = self {
            return *retryable;
        }
        matches!(
            self.kind(),
            ErrorKind::Overloaded | ErrorKind::SessionBusy | ErrorKind::Canceled
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Grid(e) => write!(f, "grid error: {e}"),
            CoreError::Sino(e) => write!(f, "sino error: {e}"),
            CoreError::Lsk(e) => write!(f, "lsk error: {e}"),
            CoreError::RoutingFailed { net } => write!(f, "failed to route net {net}"),
            CoreError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            CoreError::UnknownId { kind, id } => {
                write!(f, "unknown {kind} id {id} in edit against live snapshot")
            }
            CoreError::Canceled { phase } => {
                write!(f, "canceled during {phase} (deadline or explicit cancel)")
            }
            CoreError::Overloaded { session, capacity } => {
                write!(
                    f,
                    "session `{session}` overloaded: mailbox at capacity {capacity}"
                )
            }
            CoreError::SessionBusy { session } => {
                write!(f, "session `{session}` is busy (name already in use)")
            }
            CoreError::SessionClosed { session } => {
                write!(f, "session `{session}` is closed or was never opened")
            }
            CoreError::TooLarge { what, value, limit } => {
                write!(f, "{what} count {value} exceeds the index limit {limit}")
            }
            CoreError::Remote { kind, message, .. } => {
                write!(f, "remote error [{kind}]: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Grid(e) => Some(e),
            CoreError::Sino(e) => Some(e),
            CoreError::Lsk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gsino_grid::GridError> for CoreError {
    fn from(e: gsino_grid::GridError) -> Self {
        // Overflow of the shared u32 index space classifies uniformly as
        // `TooLarge` no matter which layer detected it.
        match e {
            gsino_grid::GridError::TooLarge { what, value, limit } => {
                CoreError::TooLarge { what, value, limit }
            }
            other => CoreError::Grid(other),
        }
    }
}

impl From<gsino_sino::SinoError> for CoreError {
    fn from(e: gsino_sino::SinoError) -> Self {
        CoreError::Sino(e)
    }
}

impl From<gsino_lsk::LskError> for CoreError {
    fn from(e: gsino_lsk::LskError) -> Self {
        CoreError::Lsk(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Checked narrowing into the `u32` index space of the flat-array cores.
///
/// Regions, nets, connections, corridor edges and CSR slots are all
/// indexed with `u32`; this is the boundary check that turns a workload
/// too large for that into a typed [`CoreError::TooLarge`] instead of a
/// silent wrap. It runs once per batch at construction/entry points — hot
/// loops keep plain casts guarded by `debug_assert!`s.
pub fn checked_index_u32(what: &'static str, value: usize) -> Result<u32> {
    u32::try_from(value).map_err(|_| CoreError::TooLarge {
        what,
        value: value as u64,
        limit: u32::MAX as u64,
    })
}

#[cfg(test)]
mod error_kind_tests {
    use super::*;

    /// Every kind string is pinned: changing one is a wire-protocol break
    /// and must fail here first. Mirrors the table on [`CoreError::kind`]
    /// and `PROTOCOL.md`.
    #[test]
    fn kind_strings_are_stable() {
        let pinned = [
            (ErrorKind::Grid, "grid"),
            (ErrorKind::Sino, "sino"),
            (ErrorKind::Lsk, "lsk"),
            (ErrorKind::RoutingFailed, "routing_failed"),
            (ErrorKind::BadConfig, "bad_config"),
            (ErrorKind::UnknownId, "unknown_id"),
            (ErrorKind::Canceled, "canceled"),
            (ErrorKind::Overloaded, "overloaded"),
            (ErrorKind::SessionBusy, "session_busy"),
            (ErrorKind::SessionClosed, "session_closed"),
            (ErrorKind::TooLarge, "too_large"),
            (ErrorKind::Remote, "remote"),
        ];
        for (kind, s) in pinned {
            assert_eq!(kind.as_str(), s, "{kind:?}");
            assert_eq!(ErrorKind::parse(s), kind, "{s}");
            assert_eq!(kind.to_string(), s);
        }
        assert_eq!(ErrorKind::parse("a_future_kind"), ErrorKind::Remote);
    }

    #[test]
    fn too_large_is_typed_and_not_retryable() {
        let from_grid: CoreError = gsino_grid::GridError::TooLarge {
            what: "regions",
            value: 1 << 40,
            limit: u32::MAX as u64,
        }
        .into();
        assert_eq!(from_grid.kind(), ErrorKind::TooLarge);
        assert!(!from_grid.is_retryable());
        let direct = CoreError::TooLarge {
            what: "edges",
            value: 5_000_000_000,
            limit: u32::MAX as u64,
        };
        assert_eq!(direct.kind(), ErrorKind::TooLarge);
        assert!(!direct.is_retryable());
        assert_eq!(
            direct.to_string(),
            "edges count 5000000000 exceeds the index limit 4294967295"
        );
    }

    #[test]
    fn remote_errors_carry_kind_and_retryability() {
        let known = CoreError::Remote {
            kind: "overloaded".into(),
            retryable: true,
            message: "mailbox full".into(),
        };
        assert_eq!(known.kind(), ErrorKind::Overloaded);
        assert!(known.is_retryable());

        // The transmitted flag wins over the local table.
        let pinned_flag = CoreError::Remote {
            kind: "overloaded".into(),
            retryable: false,
            message: "server says stop".into(),
        };
        assert_eq!(pinned_flag.kind(), ErrorKind::Overloaded);
        assert!(!pinned_flag.is_retryable());

        let unknown = CoreError::Remote {
            kind: "quota_exceeded".into(),
            retryable: true,
            message: "from the future".into(),
        };
        assert_eq!(unknown.kind(), ErrorKind::Remote);
        assert!(unknown.is_retryable());
        assert_eq!(
            unknown.to_string(),
            "remote error [quota_exceeded]: from the future"
        );
    }
}
