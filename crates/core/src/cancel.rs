//! Cooperative cancellation and deadlines for long-running phase drivers.
//!
//! ECO sessions replay edits under deadline pressure: a replay that blows
//! its budget must stop *cleanly*, with the session's transactional undo
//! log restoring the pre-edit state bit for bit. The phase drivers
//! (Phase I's deletion loop, Phase II's region worklist, Phase III's
//! refinement passes) poll a shared [`CancelToken`] at loop granularity
//! and bail out with [`CoreError::Canceled`](crate::CoreError);
//! they never leave partial state behind that the caller cannot undo,
//! because every mutation either happens in a worker-local scratch or is
//! covered by the session's undo log.
//!
//! Tokens are cheap to clone (an `Arc` around an atomic flag plus an
//! optional deadline) and can be fired from another thread or implicitly
//! by the deadline passing.

use crate::{CoreError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle: explicit [`CancelToken::cancel`] or an
/// absolute deadline, whichever fires first.
///
/// # Example
///
/// ```
/// use gsino_core::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.check("demo").is_ok());
/// token.cancel();
/// assert!(token.check("demo").is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A live token with no deadline; cancel it with [`Self::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that additionally fires once `budget` has elapsed.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A token that fires at an absolute instant — what the routing
    /// service uses to honour per-request deadlines measured from
    /// *submission*, not from whenever a batch starts executing.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// The absolute deadline this token fires at, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// A token that can never fire — what the one-shot entry points pass
    /// so the cancellable drivers stay zero-cost on the non-session path.
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has fired (explicitly or by deadline).
    pub fn is_canceled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Poll point for phase drivers: `Err(CoreError::Canceled)` naming the
    /// interrupted phase once the token fires.
    ///
    /// # Errors
    ///
    /// [`CoreError::Canceled`] if the token has fired.
    #[inline]
    pub fn check(&self, phase: &'static str) -> Result<()> {
        if self.is_canceled() {
            return Err(CoreError::Canceled { phase });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_canceled());
        assert!(t.check("x").is_ok());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_canceled());
        t.cancel();
        assert!(clone.is_canceled());
        match clone.check("phase2") {
            Err(CoreError::Canceled { phase }) => assert_eq!(phase, "phase2"),
            other => panic!("expected Canceled, got {other:?}"),
        }
    }

    #[test]
    fn deadline_token_fires_after_budget() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_canceled());
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(expired.is_canceled());
    }

    #[test]
    fn absolute_deadline_is_exposed() {
        let at = Instant::now() + Duration::from_secs(60);
        let t = CancelToken::with_deadline_at(at);
        assert_eq!(t.deadline(), Some(at));
        assert!(!t.is_canceled());
        assert_eq!(CancelToken::never().deadline(), None);
        assert_eq!(CancelToken::new().deadline(), None);
    }
}
