//! Circuit (de)serialization: JSON snapshots and the ISPD-style workload
//! text format.
//!
//! Generated benchmarks can be saved and reloaded so experiments are
//! repeatable byte-for-byte without re-running the generator (and so
//! downstream users can route their own netlists by writing this JSON).
//!
//! The second half of this module is the **workload text format** — an
//! ISPD'98/Labyrinth-style netlist/grid file ([`parse_workload`],
//! [`write_workload`], [`Workload`]) so real benchmark instances can be
//! ingested and generated ladders round-trip through plain text. The
//! grammar is documented on [`parse_workload`] and in this crate's
//! `README.md`.

use gsino_grid::geom::{Point, Rect};
use gsino_grid::net::{Circuit, Net};
use gsino_grid::region::RegionGrid;
use gsino_grid::tech::Technology;
use gsino_grid::GridError;
use std::io::{Read, Write};
use std::path::Path;

/// Errors from circuit IO.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or a circuit violating its own invariants.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io failure: {e}"),
            IoError::Format(e) => write!(f, "format failure: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serializes a circuit as JSON to any writer.
///
/// # Errors
///
/// [`IoError`] on write or serialization failure.
pub fn write_circuit<W: Write>(circuit: &Circuit, mut w: W) -> Result<(), IoError> {
    let s = serde_json::to_string_pretty(circuit).map_err(|e| IoError::Format(e.to_string()))?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a circuit from any reader, re-validating its invariants.
///
/// # Errors
///
/// [`IoError`] on read, parse, or validation failure.
pub fn read_circuit<R: Read>(mut r: R) -> Result<Circuit, IoError> {
    let mut s = String::new();
    r.read_to_string(&mut s)?;
    let circuit: Circuit = serde_json::from_str(&s).map_err(|e| IoError::Format(e.to_string()))?;
    // Serde bypasses the constructor; re-validate.
    let revalidated = Circuit::new(
        circuit.name().to_string(),
        *circuit.die(),
        circuit.nets().to_vec(),
    )
    .map_err(|e| IoError::Format(e.to_string()))?;
    Ok(revalidated)
}

/// Saves a circuit to a JSON file.
///
/// # Errors
///
/// [`IoError`] on write failure.
pub fn save_circuit(circuit: &Circuit, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_circuit(circuit, std::fs::File::create(path)?)
}

/// Loads a circuit from a JSON file.
///
/// # Errors
///
/// [`IoError`] on read/parse/validation failure.
pub fn load_circuit(path: impl AsRef<Path>) -> Result<Circuit, IoError> {
    read_circuit(std::fs::File::open(path)?)
}

/// Pin-count ceiling per net record — generous next to the generator's
/// 16-pin cap, tight enough that a corrupt count can't allocate the moon.
pub const MAX_NET_PINS: u64 = 65_536;

/// Typed errors from the workload text parser, each carrying the
/// 1-based line number it was detected on.
#[derive(Debug)]
pub enum ParseError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A malformed line: unknown directive, wrong token count, duplicate
    /// directive or net id, content after the last declared net.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A token where a number was expected failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The file ended before the declared structure was complete.
    Truncated {
        /// 1-based line number of the last line read.
        line: usize,
        /// What the parser was still expecting.
        expected: String,
    },
    /// A declared count overflows the `u32` index space the flat-array
    /// cores use (regions, nets) or the per-net pin ceiling.
    TooLarge {
        /// 1-based line number.
        line: usize,
        /// What overflowed (`"regions"`, `"nets"`, `"pins"`, …).
        what: &'static str,
        /// The declared value.
        value: u64,
        /// The maximum admitted.
        limit: u64,
    },
    /// The parsed workload failed semantic validation (pin outside the
    /// die, empty net, degenerate tile, …).
    Grid {
        /// 1-based line number (0 when the failure is whole-file).
        line: usize,
        /// The underlying substrate error.
        source: GridError,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io failure: {e}"),
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::BadNumber { line, token } => {
                write!(f, "line {line}: expected a number, got `{token}`")
            }
            ParseError::Truncated { line, expected } => {
                write!(f, "file truncated after line {line}: expected {expected}")
            }
            ParseError::TooLarge {
                line,
                what,
                value,
                limit,
            } => write!(
                f,
                "line {line}: {what} count {value} exceeds the limit {limit}"
            ),
            ParseError::Grid { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Grid { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// A parsed (or to-be-written) workload: a circuit plus the routing-grid
/// parameters the file dictates — grid dimensions, per-region capacities
/// and tile size. This is what the scale ladder feeds the pipeline.
///
/// The die is always `(0,0) – (nx·tile_w, ny·tile_h)`, recomputed
/// identically by [`Workload::new`] and [`parse_workload`], which is what
/// makes `parse ∘ write` the identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    nx: u32,
    ny: u32,
    hc: u32,
    vc: u32,
    tile_w: f64,
    tile_h: f64,
    circuit: Circuit,
}

impl Workload {
    /// Assembles and validates a workload. The die is derived as
    /// `(0,0) – (nx·tile_w, ny·tile_h)` and every net is validated
    /// against it.
    ///
    /// # Errors
    ///
    /// * [`GridError::BadTile`] for zero dimensions/capacities or a
    ///   non-finite/non-positive tile;
    /// * [`GridError::TooLarge`] if `nx * ny` overflows the `u32` region
    ///   index space;
    /// * any [`Circuit::new`] validation error.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        nx: u32,
        ny: u32,
        hc: u32,
        vc: u32,
        tile_w: f64,
        tile_h: f64,
        nets: Vec<Net>,
    ) -> Result<Self, GridError> {
        if nx == 0 || ny == 0 || hc == 0 || vc == 0 {
            return Err(GridError::BadTile { tile: 0.0 });
        }
        if !(tile_w.is_finite() && tile_w > 0.0) {
            return Err(GridError::BadTile { tile: tile_w });
        }
        if !(tile_h.is_finite() && tile_h > 0.0) {
            return Err(GridError::BadTile { tile: tile_h });
        }
        if nx.checked_mul(ny).is_none() {
            return Err(GridError::TooLarge {
                what: "regions",
                value: nx as u64 * ny as u64,
                limit: u32::MAX as u64,
            });
        }
        let die = Rect::new(
            Point::new(0.0, 0.0),
            Point::new(nx as f64 * tile_w, ny as f64 * tile_h),
        )?;
        let circuit = Circuit::new(name, die, nets)?;
        Ok(Workload {
            nx,
            ny,
            hc,
            vc,
            tile_w,
            tile_h,
            circuit,
        })
    }

    /// Region columns.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Region rows.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Horizontal track capacity per region.
    pub fn hc(&self) -> u32 {
        self.hc
    }

    /// Vertical track capacity per region.
    pub fn vc(&self) -> u32 {
        self.vc
    }

    /// Tile width (µm).
    pub fn tile_w(&self) -> f64 {
        self.tile_w
    }

    /// Tile height (µm).
    pub fn tile_h(&self) -> f64 {
        self.tile_h
    }

    /// The validated circuit (die + nets).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Consumes the workload, yielding the circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// The workload name (the circuit's name).
    pub fn name(&self) -> &str {
        self.circuit.name()
    }

    /// Builds the routing grid this file dictates: its exact `nx × ny`
    /// dimensions and capacities, with pitch/utilization from `tech`.
    ///
    /// # Errors
    ///
    /// Propagates [`RegionGrid::with_capacities`] errors (cannot occur
    /// for a validated workload).
    pub fn grid(&self, tech: &Technology) -> Result<RegionGrid, GridError> {
        RegionGrid::with_capacities(
            *self.circuit.die(),
            self.nx,
            self.ny,
            self.hc,
            self.vc,
            tech,
        )
    }
}

/// Strips a trailing `# comment` and surrounding whitespace; returns
/// `None` for lines with no content.
fn content_of(raw: &str) -> Option<&str> {
    let body = match raw.find('#') {
        Some(i) => &raw[..i],
        None => raw,
    };
    let body = body.trim();
    (!body.is_empty()).then_some(body)
}

/// Line cursor over the input: yields non-blank, comment-stripped lines
/// with their 1-based numbers and remembers the last line touched for
/// truncation reports.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    last: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            lines: s.lines().enumerate(),
            last: 0,
        }
    }

    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        for (i, raw) in self.lines.by_ref() {
            self.last = i + 1;
            if let Some(body) = content_of(raw) {
                return Some((i + 1, body));
            }
        }
        None
    }
}

/// Parses `token` as an unsigned count, range-checking against `limit`.
fn parse_count(
    line: usize,
    token: &str,
    what: &'static str,
    limit: u64,
) -> Result<u64, ParseError> {
    let value: u64 = token.parse().map_err(|_| ParseError::BadNumber {
        line,
        token: token.to_string(),
    })?;
    if value > limit {
        return Err(ParseError::TooLarge {
            line,
            what,
            value,
            limit,
        });
    }
    Ok(value)
}

/// Parses `token` as a finite `f64`.
fn parse_float(line: usize, token: &str) -> Result<f64, ParseError> {
    let v: f64 = token.parse().map_err(|_| ParseError::BadNumber {
        line,
        token: token.to_string(),
    })?;
    if !v.is_finite() {
        return Err(ParseError::BadNumber {
            line,
            token: token.to_string(),
        });
    }
    Ok(v)
}

/// Parses a workload from the ISPD-style text format.
///
/// # Grammar
///
/// Blank lines are skipped and `#` starts a comment (full-line or
/// trailing) anywhere. Header directives come in any order before
/// `num net`; `grid`, `vertical capacity` and `horizontal capacity` are
/// required, `name` (default `workload`) and `tile` (default `64 64`)
/// optional:
///
/// ```text
/// name  <string>               # workload name
/// grid  <nx> <ny>              # region columns × rows
/// vertical capacity   <vc>     # tracks per region, vertical
/// horizontal capacity <hc>     # tracks per region, horizontal
/// tile  <tile_w> <tile_h>      # region tile size in µm
/// num net <n>                  # ends the header
/// net <name> <id> <npins>      # one record per net, ids unique
///   <x> <y>                    # npins pin lines, µm, source first
/// ```
///
/// The die is `(0,0) – (nx·tile_w, ny·tile_h)`; every pin must fall
/// inside it. Anything after the last declared net is an error.
///
/// # Errors
///
/// Every failure is a typed [`ParseError`] carrying the 1-based line
/// number: syntax violations, malformed numbers, truncation, counts
/// overflowing the `u32` index space ([`ParseError::TooLarge`]) and
/// semantic validation failures ([`ParseError::Grid`]).
pub fn parse_workload_str(input: &str) -> Result<Workload, ParseError> {
    let mut cur = Cursor::new(input);
    let mut name: Option<String> = None;
    let mut dims: Option<(usize, u32, u32)> = None;
    let mut vc: Option<u32> = None;
    let mut hc: Option<u32> = None;
    let mut tile: Option<(f64, f64)> = None;
    let mut num_nets: Option<(usize, u64)> = None;

    // Header: directives in any order until `num net`.
    while num_nets.is_none() {
        let Some((line, body)) = cur.next_content() else {
            return Err(ParseError::Truncated {
                line: cur.last,
                expected: "`num net <n>` header directive".to_string(),
            });
        };
        let toks: Vec<&str> = body.split_whitespace().collect();
        let dup = |what: &str| ParseError::Syntax {
            line,
            message: format!("duplicate `{what}` directive"),
        };
        match toks.as_slice() {
            ["name", ..] => {
                if name.is_some() {
                    return Err(dup("name"));
                }
                name = Some(body["name".len()..].trim().to_string());
            }
            ["grid", nx, ny] => {
                if dims.is_some() {
                    return Err(dup("grid"));
                }
                let limit = u32::MAX as u64;
                let nx = parse_count(line, nx, "regions per axis", limit)? as u32;
                let ny = parse_count(line, ny, "regions per axis", limit)? as u32;
                if nx == 0 || ny == 0 {
                    return Err(ParseError::Syntax {
                        line,
                        message: "grid dimensions must be positive".to_string(),
                    });
                }
                if nx.checked_mul(ny).is_none() {
                    return Err(ParseError::TooLarge {
                        line,
                        what: "regions",
                        value: nx as u64 * ny as u64,
                        limit,
                    });
                }
                dims = Some((line, nx, ny));
            }
            ["vertical", "capacity", c] => {
                if vc.is_some() {
                    return Err(dup("vertical capacity"));
                }
                vc = Some(parse_count(line, c, "tracks", u32::MAX as u64)? as u32);
            }
            ["horizontal", "capacity", c] => {
                if hc.is_some() {
                    return Err(dup("horizontal capacity"));
                }
                hc = Some(parse_count(line, c, "tracks", u32::MAX as u64)? as u32);
            }
            ["tile", tw, th] => {
                if tile.is_some() {
                    return Err(dup("tile"));
                }
                tile = Some((parse_float(line, tw)?, parse_float(line, th)?));
            }
            ["num", "net", n] => {
                num_nets = Some((line, parse_count(line, n, "nets", u32::MAX as u64)?));
            }
            _ => {
                return Err(ParseError::Syntax {
                    line,
                    message: format!("unrecognized header directive `{body}`"),
                });
            }
        }
    }

    let (nets_line, declared) = num_nets.expect("loop exits with num_nets set");
    let missing = |what: &str| ParseError::Syntax {
        line: nets_line,
        message: format!("missing required `{what}` directive before `num net`"),
    };
    let (_, nx, ny) = dims.ok_or_else(|| missing("grid"))?;
    let vc = vc.ok_or_else(|| missing("vertical capacity"))?;
    let hc = hc.ok_or_else(|| missing("horizontal capacity"))?;
    let (tile_w, tile_h) = tile.unwrap_or((64.0, 64.0));
    let name = name.unwrap_or_else(|| "workload".to_string());

    // The die every pin must fall inside, exactly as Workload::new will
    // recompute it.
    let die_w = nx as f64 * tile_w;
    let die_h = ny as f64 * tile_h;

    // Net records.
    let mut nets: Vec<Net> = Vec::with_capacity(declared.min(1 << 20) as usize);
    let mut seen = std::collections::HashSet::with_capacity(nets.capacity());
    for k in 0..declared {
        let Some((line, body)) = cur.next_content() else {
            return Err(ParseError::Truncated {
                line: cur.last,
                expected: format!("net record {k} of {declared}"),
            });
        };
        let toks: Vec<&str> = body.split_whitespace().collect();
        let ["net", _name, id, npins] = toks.as_slice() else {
            return Err(ParseError::Syntax {
                line,
                message: format!("expected `net <name> <id> <npins>`, got `{body}`"),
            });
        };
        let id = parse_count(line, id, "net id", u32::MAX as u64)? as u32;
        if !seen.insert(id) {
            return Err(ParseError::Syntax {
                line,
                message: format!("duplicate net id {id}"),
            });
        }
        let npins = parse_count(line, npins, "pins", MAX_NET_PINS)?;
        if npins == 0 {
            return Err(ParseError::Grid {
                line,
                source: GridError::EmptyNet { net: id },
            });
        }
        let mut pins = Vec::with_capacity(npins as usize);
        for p in 0..npins {
            let Some((pline, pbody)) = cur.next_content() else {
                return Err(ParseError::Truncated {
                    line: cur.last,
                    expected: format!("pin {p} of {npins} for net {id}"),
                });
            };
            let ptoks: Vec<&str> = pbody.split_whitespace().collect();
            let [x, y] = ptoks.as_slice() else {
                return Err(ParseError::Syntax {
                    line: pline,
                    message: format!("expected `<x> <y>` pin line, got `{pbody}`"),
                });
            };
            let x = parse_float(pline, x)?;
            let y = parse_float(pline, y)?;
            if !(0.0..=die_w).contains(&x) || !(0.0..=die_h).contains(&y) {
                return Err(ParseError::Grid {
                    line: pline,
                    source: GridError::PinOutsideDie {
                        net: id,
                        at: (x, y),
                    },
                });
            }
            pins.push(Point::new(x, y));
        }
        nets.push(Net::new(id, pins));
    }
    if let Some((line, body)) = cur.next_content() {
        return Err(ParseError::Syntax {
            line,
            message: format!("content after the last declared net: `{body}`"),
        });
    }

    Workload::new(name, nx, ny, hc, vc, tile_w, tile_h, nets)
        .map_err(|source| ParseError::Grid { line: 0, source })
}

/// [`parse_workload_str`] over any reader.
///
/// # Errors
///
/// [`ParseError::Io`] on read failure, otherwise as
/// [`parse_workload_str`].
pub fn parse_workload<R: Read>(mut r: R) -> Result<Workload, ParseError> {
    let mut s = String::new();
    r.read_to_string(&mut s)?;
    parse_workload_str(&s)
}

/// Loads a workload from a text file.
///
/// # Errors
///
/// As [`parse_workload`].
pub fn load_workload(path: impl AsRef<Path>) -> Result<Workload, ParseError> {
    parse_workload(std::fs::File::open(path)?)
}

/// Writes a workload in the text format [`parse_workload`] reads.
///
/// Coordinates print with Rust's default `f64` display (the shortest
/// string that parses back to the same bits), so
/// `parse_workload(write_workload(w)) == w` exactly — property-tested in
/// `tests/workload_format.rs`.
///
/// # Errors
///
/// [`IoError::Io`] on write failure.
pub fn write_workload<W: Write>(wl: &Workload, mut out: W) -> Result<(), IoError> {
    let c = wl.circuit();
    writeln!(out, "# gsino workload")?;
    writeln!(out, "name {}", c.name())?;
    writeln!(out, "grid {} {}", wl.nx(), wl.ny())?;
    writeln!(out, "vertical capacity {}", wl.vc())?;
    writeln!(out, "horizontal capacity {}", wl.hc())?;
    writeln!(out, "tile {} {}", wl.tile_w(), wl.tile_h())?;
    writeln!(out, "num net {}", c.num_nets())?;
    for net in c.nets() {
        writeln!(out, "net n{} {} {}", net.id(), net.id(), net.degree())?;
        for p in net.pins() {
            writeln!(out, "  {} {}", p.x, p.y)?;
        }
    }
    Ok(())
}

/// Saves a workload to a text file.
///
/// # Errors
///
/// [`IoError::Io`] on write failure.
pub fn save_workload(wl: &Workload, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_workload(wl, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec::CircuitSpec;

    #[test]
    fn roundtrip_preserves_circuit() {
        let spec = CircuitSpec::ibm01().scaled(0.05);
        let circuit = generate(&spec, 3).unwrap();
        let mut buf = Vec::new();
        write_circuit(&circuit, &mut buf).unwrap();
        let loaded = read_circuit(buf.as_slice()).unwrap();
        assert_eq!(circuit, loaded);
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(matches!(
            read_circuit("not json".as_bytes()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn invalid_circuit_json_is_rejected() {
        // A syntactically valid circuit whose pin violates the die.
        let json = r#"{
            "name": "bad",
            "die": {"lo": {"x": 0.0, "y": 0.0}, "hi": {"x": 10.0, "y": 10.0}},
            "nets": [{"id": 0, "pins": [{"x": 99.0, "y": 0.0}]}]
        }"#;
        assert!(matches!(
            read_circuit(json.as_bytes()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let spec = CircuitSpec::ibm01().scaled(0.05);
        let circuit = generate(&spec, 9).unwrap();
        let path = std::env::temp_dir().join("gsino_io_test.json");
        save_circuit(&circuit, &path).unwrap();
        let loaded = load_circuit(&path).unwrap();
        assert_eq!(circuit, loaded);
        let _ = std::fs::remove_file(&path);
    }
}
