//! Circuit (de)serialization.
//!
//! Generated benchmarks can be saved and reloaded so experiments are
//! repeatable byte-for-byte without re-running the generator (and so
//! downstream users can route their own netlists by writing this JSON).

use gsino_grid::net::Circuit;
use std::io::{Read, Write};
use std::path::Path;

/// Errors from circuit IO.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON or a circuit violating its own invariants.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io failure: {e}"),
            IoError::Format(e) => write!(f, "format failure: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serializes a circuit as JSON to any writer.
///
/// # Errors
///
/// [`IoError`] on write or serialization failure.
pub fn write_circuit<W: Write>(circuit: &Circuit, mut w: W) -> Result<(), IoError> {
    let s = serde_json::to_string_pretty(circuit).map_err(|e| IoError::Format(e.to_string()))?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a circuit from any reader, re-validating its invariants.
///
/// # Errors
///
/// [`IoError`] on read, parse, or validation failure.
pub fn read_circuit<R: Read>(mut r: R) -> Result<Circuit, IoError> {
    let mut s = String::new();
    r.read_to_string(&mut s)?;
    let circuit: Circuit = serde_json::from_str(&s).map_err(|e| IoError::Format(e.to_string()))?;
    // Serde bypasses the constructor; re-validate.
    let revalidated = Circuit::new(
        circuit.name().to_string(),
        *circuit.die(),
        circuit.nets().to_vec(),
    )
    .map_err(|e| IoError::Format(e.to_string()))?;
    Ok(revalidated)
}

/// Saves a circuit to a JSON file.
///
/// # Errors
///
/// [`IoError`] on write failure.
pub fn save_circuit(circuit: &Circuit, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_circuit(circuit, std::fs::File::create(path)?)
}

/// Loads a circuit from a JSON file.
///
/// # Errors
///
/// [`IoError`] on read/parse/validation failure.
pub fn load_circuit(path: impl AsRef<Path>) -> Result<Circuit, IoError> {
    read_circuit(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec::CircuitSpec;

    #[test]
    fn roundtrip_preserves_circuit() {
        let spec = CircuitSpec::ibm01().scaled(0.05);
        let circuit = generate(&spec, 3).unwrap();
        let mut buf = Vec::new();
        write_circuit(&circuit, &mut buf).unwrap();
        let loaded = read_circuit(buf.as_slice()).unwrap();
        assert_eq!(circuit, loaded);
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(matches!(
            read_circuit("not json".as_bytes()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn invalid_circuit_json_is_rejected() {
        // A syntactically valid circuit whose pin violates the die.
        let json = r#"{
            "name": "bad",
            "die": {"lo": {"x": 0.0, "y": 0.0}, "hi": {"x": 10.0, "y": 10.0}},
            "nets": [{"id": 0, "pins": [{"x": 99.0, "y": 0.0}]}]
        }"#;
        assert!(matches!(
            read_circuit(json.as_bytes()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let spec = CircuitSpec::ibm01().scaled(0.05);
        let circuit = generate(&spec, 9).unwrap();
        let path = std::env::temp_dir().join("gsino_io_test.json");
        save_circuit(&circuit, &path).unwrap();
        let loaded = load_circuit(&path).unwrap();
        assert_eq!(circuit, loaded);
        let _ = std::fs::remove_file(&path);
    }
}
