//! The experiment harness: regenerates the paper's Tables 1–3.
//!
//! For each circuit and sensitivity rate, runs the three flows (ID+NO,
//! iSINO, GSINO) with shared configuration and collects the quantities the
//! paper tabulates: crosstalk-violating net counts (Table 1), average wire
//! lengths (Table 2), and routing areas (Table 3), plus the §4 observation
//! about overhead shrinking from 50% to 30% sensitivity and the §5 claim
//! that the ID phase dominates runtime.

use crate::generator::generate;
use crate::spec::CircuitSpec;
use gsino_core::baseline::{run_id_no, run_isino};
use gsino_core::pipeline::{reference_kth, run_gsino, GsinoConfig, GsinoOutcome, PhaseTimings};
use gsino_core::{CoreError, Result};
use gsino_grid::sensitivity::SensitivityModel;
use gsino_grid::tech::Technology;
use gsino_lsk::table::NoiseTable;
use gsino_sino::nss::NssModel;
use serde::{Deserialize, Serialize};

/// Suite configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Problem scale in `(0, 1]` (1 = the full calibrated suite).
    pub scale: f64,
    /// Sensitivity rates to sweep (the paper uses 0.3 and 0.5).
    pub rates: Vec<f64>,
    /// Circuits to run.
    pub circuits: Vec<CircuitSpec>,
    /// Master seed.
    pub seed: u64,
    /// Phase II worker threads (0 = auto).
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.2,
            rates: vec![0.3, 0.5],
            circuits: CircuitSpec::suite(),
            seed: 2002,
            threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// Reads `GSINO_SCALE` (default 0.2) and `GSINO_CIRCUITS` (a comma list
    /// such as `ibm01,ibm02`; default all six) from the environment.
    pub fn from_env() -> Self {
        let mut config = ExperimentConfig::default();
        if let Ok(s) = std::env::var("GSINO_SCALE") {
            if let Ok(v) = s.parse::<f64>() {
                config.scale = v.clamp(0.01, 1.0);
            }
        }
        if let Ok(list) = std::env::var("GSINO_CIRCUITS") {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            config
                .circuits
                .retain(|c| wanted.contains(&c.name.as_str()));
            if config.circuits.is_empty() {
                config.circuits = CircuitSpec::suite();
            }
        }
        config
    }

    /// A tiny configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 0.05,
            rates: vec![0.3, 0.5],
            circuits: vec![CircuitSpec::ibm01()],
            seed: 2002,
            threads: 0,
        }
    }
}

/// The tabulated quantities of one flow on one circuit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApproachResult {
    /// Nets with at least one violating sink.
    pub violating_nets: usize,
    /// Same, as a percentage of the circuit's signal nets.
    pub violating_pct: f64,
    /// Average wire length (µm).
    pub mean_wl: f64,
    /// Maximum row length (µm).
    pub area_w: f64,
    /// Maximum column length (µm).
    pub area_h: f64,
    /// Routing area (µm²).
    pub area: f64,
    /// Routing area with shields stripped (µm²).
    pub area_nets_only: f64,
    /// Total shields (tracks).
    pub shields: u64,
    /// Phase timings (s).
    pub route_s: f64,
    /// Phase II time (s).
    pub sino_s: f64,
    /// Phase III time (s).
    pub refine_s: f64,
    /// End-to-end time (s).
    pub total_s: f64,
}

impl ApproachResult {
    fn from_outcome(o: &GsinoOutcome, nets: usize) -> Self {
        let PhaseTimings {
            route_s,
            sino_s,
            refine_s,
            total_s,
            ..
        } = o.timings;
        ApproachResult {
            violating_nets: o.violations.violating_nets(),
            violating_pct: 100.0 * o.violations.violating_nets() as f64 / nets.max(1) as f64,
            mean_wl: o.wirelength.mean_um,
            area_w: o.area.width,
            area_h: o.area.height,
            area: o.area.area(),
            area_nets_only: o.area_nets_only.area(),
            shields: o.total_shields,
            route_s,
            sino_s,
            refine_s,
            total_s,
        }
    }
}

/// Results for one circuit at one sensitivity rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CircuitResult {
    /// Circuit name.
    pub name: String,
    /// Sensitivity rate.
    pub rate: f64,
    /// Signal nets generated.
    pub nets: usize,
    /// ID+NO baseline.
    pub id_no: ApproachResult,
    /// iSINO baseline.
    pub isino: ApproachResult,
    /// GSINO.
    pub gsino: ApproachResult,
}

/// Full-suite results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteResults {
    /// Scale the suite ran at.
    pub scale: f64,
    /// Per circuit × rate results.
    pub results: Vec<CircuitResult>,
}

/// Runs the whole suite.
///
/// # Errors
///
/// Propagates generation and flow errors.
pub fn run_suite(config: &ExperimentConfig) -> Result<SuiteResults> {
    let mut results = Vec::new();
    for spec in &config.circuits {
        let scaled = spec.scaled(config.scale);
        let t0 = std::time::Instant::now();
        let circuit = generate(&scaled, config.seed).map_err(CoreError::Grid)?;
        eprintln!(
            "[suite] {}: generated {} nets in {:.1}s",
            scaled.name,
            circuit.num_nets(),
            t0.elapsed().as_secs_f64()
        );
        // Pre-fit Formula (3) once per circuit; it depends on the typical
        // budget, not on the sensitivity rate.
        let table = NoiseTable::calibrated(&Technology::itrs_100nm());
        let kth_ref = reference_kth(&circuit, &table, 0.15);
        let model = NssModel::fit(kth_ref, config.seed ^ 0x5EED)?;
        for &rate in &config.rates {
            let flow_config = GsinoConfig {
                sensitivity: SensitivityModel::new(rate, config.seed ^ 0xC1C),
                nss_model: Some(model.clone()),
                threads: config.threads,
                ..GsinoConfig::default()
            };
            let elapsed = |label: &str, t: std::time::Instant| {
                eprintln!(
                    "[suite] {} rate {:.0}%: {label} done in {:.1}s",
                    scaled.name,
                    rate * 100.0,
                    t.elapsed().as_secs_f64()
                );
            };
            let t = std::time::Instant::now();
            let id_no = run_id_no(&circuit, &flow_config)?;
            elapsed("ID+NO", t);
            let t = std::time::Instant::now();
            let isino = run_isino(&circuit, &flow_config)?;
            elapsed("iSINO", t);
            let t = std::time::Instant::now();
            let gsino = run_gsino(&circuit, &flow_config)?;
            elapsed("GSINO", t);
            results.push(CircuitResult {
                name: scaled.name.clone(),
                rate,
                nets: circuit.num_nets(),
                id_no: ApproachResult::from_outcome(&id_no, circuit.num_nets()),
                isino: ApproachResult::from_outcome(&isino, circuit.num_nets()),
                gsino: ApproachResult::from_outcome(&gsino, circuit.num_nets()),
            });
        }
    }
    Ok(SuiteResults {
        scale: config.scale,
        results,
    })
}

impl SuiteResults {
    /// Result cell for `(circuit, rate)`.
    pub fn get(&self, name: &str, rate: f64) -> Option<&CircuitResult> {
        self.results
            .iter()
            .find(|r| r.name == name && (r.rate - rate).abs() < 1e-9)
    }

    /// Distinct rates in sweep order.
    pub fn rates(&self) -> Vec<f64> {
        let mut rates: Vec<f64> = Vec::new();
        for r in &self.results {
            if !rates.iter().any(|x| (x - r.rate).abs() < 1e-9) {
                rates.push(r.rate);
            }
        }
        rates
    }

    /// Distinct circuit names in run order.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for r in &self.results {
            if !names.contains(&r.name) {
                names.push(r.name.clone());
            }
        }
        names
    }

    /// Table 1: numbers of crosstalk-violating nets for ID+NO solutions.
    pub fn render_table1(&self) -> String {
        let rates = self.rates();
        let mut out = String::from(
            "Table 1: crosstalk-violating nets in ID+NO solutions (count, % of signal nets)\n",
        );
        out.push_str(&format!("{:<8}", "circuit"));
        for r in &rates {
            out.push_str(&format!(" | sens {:>3.0}%        ", r * 100.0));
        }
        out.push('\n');
        for name in self.names() {
            out.push_str(&format!("{name:<8}"));
            for &rate in &rates {
                if let Some(c) = self.get(&name, rate) {
                    out.push_str(&format!(
                        " | {:>6} ({:>5.2}%)",
                        c.id_no.violating_nets, c.id_no.violating_pct
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Table 2: average wire lengths of ID+NO and GSINO solutions.
    pub fn render_table2(&self) -> String {
        let rates = self.rates();
        let mut out = String::from("Table 2: average wire lengths (um); GSINO overhead vs ID+NO\n");
        out.push_str(&format!("{:<8}", "circuit"));
        for r in &rates {
            out.push_str(&format!(
                " | sens {:>2.0}%: ID+NO   GSINO (ovh)   ",
                r * 100.0
            ));
        }
        out.push('\n');
        for name in self.names() {
            out.push_str(&format!("{name:<8}"));
            for &rate in &rates {
                if let Some(c) = self.get(&name, rate) {
                    let ovh = 100.0 * (c.gsino.mean_wl - c.id_no.mean_wl) / c.id_no.mean_wl;
                    out.push_str(&format!(
                        " | {:>10.0} {:>7.0} ({:>5.2}%) ",
                        c.id_no.mean_wl, c.gsino.mean_wl, ovh
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Table 3: routing areas of ID+NO, iSINO and GSINO solutions.
    pub fn render_table3(&self) -> String {
        let mut out =
            String::from("Table 3: routing areas (um x um); overheads vs ID+NO in parentheses\n");
        for &rate in &self.rates() {
            out.push_str(&format!("sensitivity rate = {:.0}%\n", rate * 100.0));
            out.push_str(&format!(
                "{:<8} | {:<13} | {:<22} | {:<22}\n",
                "circuit", "ID+NO", "iSINO", "GSINO"
            ));
            for name in self.names() {
                if let Some(c) = self.get(&name, rate) {
                    let ovh = |a: &ApproachResult| 100.0 * (a.area - c.id_no.area) / c.id_no.area;
                    out.push_str(&format!(
                        "{:<8} | {:>5.0} x {:>5.0} | {:>5.0} x {:>5.0} ({:>6.2}%) | {:>5.0} x {:>5.0} ({:>6.2}%)\n",
                        name,
                        c.id_no.area_w,
                        c.id_no.area_h,
                        c.isino.area_w,
                        c.isino.area_h,
                        ovh(&c.isino),
                        c.gsino.area_w,
                        c.gsino.area_h,
                        ovh(&c.gsino),
                    ));
                }
            }
        }
        out
    }

    /// The §4 observation: how much the GSINO overheads shrink when the
    /// sensitivity rate drops from the higher rate to the lower one.
    pub fn render_observations(&self) -> String {
        let rates = self.rates();
        if rates.len() < 2 {
            return String::from("(needs two rates for the overhead-reduction observation)\n");
        }
        let (lo, hi) = (rates[0].min(rates[1]), rates[0].max(rates[1]));
        let mut wl_red = Vec::new();
        let mut area_red = Vec::new();
        for name in self.names() {
            if let (Some(l), Some(h)) = (self.get(&name, lo), self.get(&name, hi)) {
                let wl_ovh_l = (l.gsino.mean_wl - l.id_no.mean_wl) / l.id_no.mean_wl;
                let wl_ovh_h = (h.gsino.mean_wl - h.id_no.mean_wl) / h.id_no.mean_wl;
                if wl_ovh_h > 1e-9 {
                    wl_red.push(1.0 - wl_ovh_l / wl_ovh_h);
                }
                let a_ovh_l = (l.gsino.area - l.id_no.area) / l.id_no.area;
                let a_ovh_h = (h.gsino.area - h.id_no.area) / h.id_no.area;
                if a_ovh_h > 1e-9 {
                    area_red.push(1.0 - a_ovh_l / a_ovh_h);
                }
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        format!(
            "Observation (paper S4): dropping sensitivity {:.0}% -> {:.0}% reduces GSINO \
             wire-length overhead by {:.0}% and area overhead by {:.0}% on average\n",
            hi * 100.0,
            lo * 100.0,
            100.0 * mean(&wl_red),
            100.0 * mean(&area_red),
        )
    }

    /// The §5 claim: share of GSINO runtime spent in the ID routing phase.
    pub fn render_runtime_breakdown(&self) -> String {
        let mut out =
            String::from("Runtime breakdown of GSINO (paper S5 expects routing to dominate)\n");
        for r in &self.results {
            let g = &r.gsino;
            out.push_str(&format!(
                "{:<8} rate {:>2.0}%: route {:>6.2}s ({:>4.1}%)  sino {:>6.2}s  refine {:>6.2}s  total {:>6.2}s\n",
                r.name,
                r.rate * 100.0,
                g.route_s,
                100.0 * g.route_s / g.total_s.max(1e-9),
                g.sino_s,
                g.refine_s,
                g.total_s,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_has_expected_shape() {
        let results = run_suite(&ExperimentConfig::quick()).unwrap();
        assert_eq!(results.results.len(), 2); // 1 circuit × 2 rates.
        assert_eq!(results.names(), vec!["ibm01"]);
        assert_eq!(results.rates(), vec![0.3, 0.5]);
        for r in &results.results {
            // GSINO and iSINO must be clean; ID+NO inserts no shields.
            assert_eq!(r.gsino.violating_nets, 0, "GSINO must be clean");
            assert_eq!(r.isino.violating_nets, 0, "iSINO must be clean");
            assert_eq!(r.id_no.shields, 0);
            // iSINO shares ID+NO's routing, hence its wire length.
            assert!((r.isino.mean_wl - r.id_no.mean_wl).abs() < 1e-9);
        }
    }

    #[test]
    fn tables_render_nonempty() {
        let results = run_suite(&ExperimentConfig::quick()).unwrap();
        let t1 = results.render_table1();
        let t2 = results.render_table2();
        let t3 = results.render_table3();
        assert!(t1.contains("ibm01"));
        assert!(t2.contains("GSINO"));
        assert!(t3.contains("iSINO"));
        assert!(results.render_observations().contains("Observation"));
        assert!(results.render_runtime_breakdown().contains("route"));
    }

    fn fake_approach(wl: f64, area: f64, viol: usize) -> ApproachResult {
        ApproachResult {
            violating_nets: viol,
            violating_pct: viol as f64 / 10.0,
            mean_wl: wl,
            area_w: area.sqrt(),
            area_h: area.sqrt(),
            area,
            area_nets_only: area * 0.98,
            shields: 42,
            route_s: 1.0,
            sino_s: 0.2,
            refine_s: 0.3,
            total_s: 1.6,
        }
    }

    fn fake_results() -> SuiteResults {
        let cell = |rate: f64, gsino_wl: f64| CircuitResult {
            name: "ibm01".into(),
            rate,
            nets: 1000,
            id_no: fake_approach(600.0, 1.0e6, 150),
            isino: fake_approach(600.0, 1.2e6, 0),
            gsino: fake_approach(gsino_wl, 1.1e6, 0),
        };
        SuiteResults {
            scale: 1.0,
            results: vec![cell(0.3, 620.0), cell(0.5, 660.0)],
        }
    }

    #[test]
    fn table1_reports_counts_and_percentages() {
        let t = fake_results().render_table1();
        assert!(t.contains("150"), "{t}");
        assert!(t.contains("15.00%"), "{t}");
    }

    #[test]
    fn table2_computes_overheads() {
        let t = fake_results().render_table2();
        // (620 - 600) / 600 = 3.33%.
        assert!(t.contains("3.33%"), "{t}");
        assert!(t.contains("10.00%"), "{t}");
    }

    #[test]
    fn table3_computes_area_overheads() {
        let t = fake_results().render_table3();
        // iSINO: +20%, GSINO: +10%.
        assert!(t.contains("20.00%"), "{t}");
        assert!(t.contains("10.00%"), "{t}");
        assert!(t.contains("sensitivity rate = 30%"));
        assert!(t.contains("sensitivity rate = 50%"));
    }

    #[test]
    fn observations_report_overhead_reduction() {
        let o = fake_results().render_observations();
        // WL overhead: 3.33% at 30, 10% at 50 → reduction ≈ 67%.
        assert!(o.contains("67%"), "{o}");
        // Needs two rates.
        let single = SuiteResults {
            scale: 1.0,
            results: fake_results().results[..1].to_vec(),
        };
        assert!(single.render_observations().contains("needs two rates"));
    }

    #[test]
    fn lookup_helpers() {
        let r = fake_results();
        assert!(r.get("ibm01", 0.3).is_some());
        assert!(r.get("ibm01", 0.4).is_none());
        assert!(r.get("ibm99", 0.3).is_none());
        assert_eq!(r.names(), vec!["ibm01"]);
        assert_eq!(r.rates(), vec![0.3, 0.5]);
    }

    #[test]
    fn results_serialize_roundtrip() {
        let r = fake_results();
        let json = serde_json::to_string(&r).unwrap();
        let back: SuiteResults = serde_json::from_str(&json).unwrap();
        assert_eq!(back.results.len(), 2);
        assert_eq!(back.results[0].id_no.violating_nets, 150);
    }

    #[test]
    fn env_config_parses_scale() {
        // Serialize access to the env var via a temp value.
        std::env::set_var("GSINO_SCALE", "0.07");
        let config = ExperimentConfig::from_env();
        assert!((config.scale - 0.07).abs() < 1e-9);
        std::env::remove_var("GSINO_SCALE");
    }
}
