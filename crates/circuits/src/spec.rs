//! Benchmark circuit specifications.
//!
//! Die dimensions come from the paper's Table 3 (ID+NO row); target average
//! wire lengths from Table 2 (ID+NO column). Net counts are sized for the
//! routable global-net population of a single over-the-cell layer pair at
//! ≈65% average track density (capped by the published signal-net totals
//! back-solved from Table 1) — see `DESIGN.md` for the full derivation.

use serde::{Deserialize, Serialize};

/// Average track density the suite targets before shield insertion. The
/// paper's ID+NO baseline shows essentially no overflow (its Table 3 area
/// equals the placement footprint), so the median region must stay well
/// under capacity even though placement hotspots run ~2× the median.
pub const TARGET_DENSITY: f64 = 0.70;

/// One benchmark circuit's generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitSpec {
    /// Circuit name (`ibm01` … `ibm06`).
    pub name: String,
    /// Number of signal nets to generate.
    pub num_nets: usize,
    /// Die width (µm) — Table 3, ID+NO.
    pub die_w: f64,
    /// Die height (µm) — Table 3, ID+NO.
    pub die_h: f64,
    /// Target average net wire length (µm) — Table 2, ID+NO.
    pub target_wl: f64,
    /// Published signal-net total (back-solved from Table 1), for
    /// reporting percentages against the paper's population.
    pub published_nets: usize,
}

impl CircuitSpec {
    /// Net count giving [`TARGET_DENSITY`] on a 64 µm / 16-track grid,
    /// capped at the published total.
    fn sized(name: &str, die_w: f64, die_h: f64, target_wl: f64, published: usize) -> Self {
        // A net of length `wl` occupies ≈ wl/tile + 2.5 track slots across
        // the regions it crosses (one per edge, plus the far end region and
        // the double-counted bend regions). Solve
        // nets × slots / (2 × num_regions) = TARGET_DENSITY × 16 tracks.
        let tile = 64.0;
        let tracks = 16.0;
        let regions = (die_w / tile) * (die_h / tile);
        let slots_per_net = target_wl / tile + 2.5;
        let nets = (TARGET_DENSITY * tracks * 2.0 * regions / slots_per_net).round() as usize;
        CircuitSpec {
            name: name.to_string(),
            num_nets: nets.min(published),
            die_w,
            die_h,
            target_wl,
            published_nets: published,
        }
    }

    /// ibm01: 1533 × 1824 µm, 639 µm average wire length.
    pub fn ibm01() -> Self {
        Self::sized("ibm01", 1533.0, 1824.0, 639.0, 13_062)
    }

    /// ibm02: 3004 × 3995 µm, 724 µm.
    pub fn ibm02() -> Self {
        Self::sized("ibm02", 3004.0, 3995.0, 724.0, 19_288)
    }

    /// ibm03: 3178 × 3852 µm, 647 µm.
    pub fn ibm03() -> Self {
        Self::sized("ibm03", 3178.0, 3852.0, 647.0, 26_101)
    }

    /// ibm04: 3861 × 3910 µm, 748 µm.
    pub fn ibm04() -> Self {
        Self::sized("ibm04", 3861.0, 3910.0, 748.0, 31_322)
    }

    /// ibm05: 9837 × 7286 µm, 695 µm.
    pub fn ibm05() -> Self {
        Self::sized("ibm05", 9837.0, 7286.0, 695.0, 29_647)
    }

    /// ibm06: 5002 × 3795 µm, 769 µm.
    pub fn ibm06() -> Self {
        Self::sized("ibm06", 5002.0, 3795.0, 769.0, 34_398)
    }

    /// The whole suite in order.
    pub fn suite() -> Vec<CircuitSpec> {
        vec![
            Self::ibm01(),
            Self::ibm02(),
            Self::ibm03(),
            Self::ibm04(),
            Self::ibm05(),
            Self::ibm06(),
        ]
    }

    /// A scaled-down variant: `scale` of the nets on a die shrunk by
    /// `√scale` per side, preserving track density and wire-length targets
    /// (wire lengths are clamped by the smaller die during generation).
    pub fn scaled(&self, scale: f64) -> CircuitSpec {
        let scale = scale.clamp(1e-3, 1.0);
        let side = scale.sqrt();
        CircuitSpec {
            name: self.name.clone(),
            num_nets: ((self.num_nets as f64 * scale).round() as usize).max(8),
            die_w: (self.die_w * side).max(256.0),
            die_h: (self.die_h * side).max(256.0),
            target_wl: self.target_wl,
            published_nets: self.published_nets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_circuits() {
        let suite = CircuitSpec::suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[0].name, "ibm01");
        assert_eq!(suite[5].name, "ibm06");
    }

    #[test]
    fn net_counts_capped_by_published() {
        for spec in CircuitSpec::suite() {
            assert!(spec.num_nets <= spec.published_nets, "{}", spec.name);
            assert!(
                spec.num_nets > 500,
                "{} too small: {}",
                spec.name,
                spec.num_nets
            );
        }
    }

    #[test]
    fn density_formula_matches_target() {
        let s = CircuitSpec::ibm01();
        let regions = (s.die_w / 64.0) * (s.die_h / 64.0);
        let slots = s.target_wl / 64.0 + 2.5;
        let demand = s.num_nets as f64 * slots / (2.0 * regions);
        assert!((demand / 16.0 - TARGET_DENSITY).abs() < 0.02);
    }

    #[test]
    fn ibm05_is_the_big_one() {
        let suite = CircuitSpec::suite();
        let areas: Vec<f64> = suite.iter().map(|s| s.die_w * s.die_h).collect();
        assert!(areas[4] > areas.iter().cloned().fold(0.0, f64::max) - 1.0);
    }

    #[test]
    fn scaled_preserves_shape() {
        let s = CircuitSpec::ibm02().scaled(0.25);
        assert_eq!(s.target_wl, 724.0);
        assert!((s.die_w / CircuitSpec::ibm02().die_w - 0.5).abs() < 1e-9);
        assert!((s.num_nets as f64 / CircuitSpec::ibm02().num_nets as f64 - 0.25).abs() < 0.01);
        // Extreme scales clamp.
        let tiny = CircuitSpec::ibm01().scaled(1e-9);
        assert!(tiny.num_nets >= 8);
        assert!(tiny.die_w >= 256.0);
    }
}
