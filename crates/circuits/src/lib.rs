//! Synthetic ISPD'98/IBM-like benchmark circuits and the experiment
//! harness that regenerates the paper's tables.
//!
//! The original ISPD'98 netlists and their DRAGON placements are not
//! available offline, so [`generator`] synthesizes circuits calibrated to
//! the published observables the experiments depend on (see `DESIGN.md`):
//! the die dimensions of Table 3's ID+NO row, the average wire lengths of
//! Table 2's ID+NO column, a 2-pin-dominated pin-count distribution, and a
//! net count sized so the paper's single over-the-cell layer pair runs at
//! a realistic track density (≈65% before shields).
//!
//! [`experiment`] runs the ID+NO / iSINO / GSINO flows across the suite
//! and renders the paper's three tables plus the derived observations.
//!
//! # Example
//!
//! ```no_run
//! use gsino_circuits::spec::CircuitSpec;
//! use gsino_circuits::generator::generate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CircuitSpec::ibm01().scaled(0.1);
//! let circuit = generate(&spec, 42)?;
//! assert_eq!(circuit.num_nets(), spec.num_nets);
//! # Ok(())
//! # }
//! ```
//!
//! # Architecture
//!
//! The pipeline-wide map — which phase this crate serves and the
//! incremental-engine contracts shared across the workspace — lives in
//! `ARCHITECTURE.md` at the repository root.

pub mod experiment;
pub mod generator;
pub mod io;
pub mod spec;

pub use experiment::{ExperimentConfig, SuiteResults};
pub use generator::{circuit_digest, generate, generate_scaled, generate_with, ScaleSpec};
pub use io::{
    load_workload, parse_workload, parse_workload_str, save_workload, write_workload, ParseError,
    Workload,
};
pub use spec::CircuitSpec;
