//! Circuit/routing diagnostics: wire-length decomposition and congestion
//! profile for a generated benchmark. Useful when calibrating the suite.
//!
//! ```text
//! cargo run -p gsino-circuits --bin diag --release -- [ibm01] [scale]
//! ```

use gsino_circuits::generator::generate;
use gsino_circuits::spec::CircuitSpec;
use gsino_core::metrics::wirelength_stats;
use gsino_core::router::{route_all, ShieldTerm, Weights};
use gsino_grid::region::RegionGrid;
use gsino_grid::route::Dir;
use gsino_grid::tech::Technology;
use gsino_grid::usage::TrackUsage;
use gsino_steiner::rsmt_estimate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("ibm01");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let weights = args
        .get(2)
        .map(|s| {
            let v: Vec<f64> = s.split(',').filter_map(|x| x.parse().ok()).collect();
            Weights {
                alpha: v[0],
                beta: v[1],
                gamma: v[2],
            }
        })
        .unwrap_or_default();
    let spec = CircuitSpec::suite()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(CircuitSpec::ibm01)
        .scaled(scale);
    let circuit = generate(&spec, 2002).expect("generation");
    let tech = Technology::itrs_100nm();
    let grid = RegionGrid::new(&circuit, &tech, 64.0).expect("grid");

    let n = circuit.num_nets() as f64;
    let mean_hpwl = circuit.mean_hpwl();
    let mean_steiner: f64 = circuit
        .nets()
        .iter()
        .map(|net| rsmt_estimate(net.pins()))
        .sum::<f64>()
        / n;
    println!(
        "{name} scale {scale}: {} nets, die {:.0} x {:.0}",
        circuit.num_nets(),
        spec.die_w,
        spec.die_h
    );
    println!("mean HPWL      {mean_hpwl:8.1} um");
    println!(
        "mean RSMT est  {mean_steiner:8.1} um  (target {:.0})",
        spec.target_wl
    );

    let (routes, stats) = route_all(&grid, &circuit, weights, ShieldTerm::None).expect("routing");
    let wl = wirelength_stats(&circuit, &grid, &routes);
    println!(
        "mean routed    {:8.1} um  (inflation vs RSMT {:.2}x)",
        wl.mean_um,
        wl.mean_um / mean_steiner
    );
    println!(
        "router: {} connections, {} edges, {} deletions, {} reinserts",
        stats.connections, stats.edges_initial, stats.deletions, stats.reinserts
    );

    let usage = TrackUsage::from_routes(&grid, &routes);
    let mut densities: Vec<f64> = Vec::new();
    for r in 0..grid.num_regions() {
        densities.push(usage.density(r, Dir::H));
        densities.push(usage.density(r, Dir::V));
    }
    densities.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |q: f64| densities[((densities.len() - 1) as f64 * q) as usize];
    println!(
        "density quantiles: p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        pick(0.5),
        pick(0.9),
        pick(0.99),
        pick(1.0)
    );
    println!("total overflow tracks: {}", usage.total_overflow());

    // Per-region coupling profile under order-only (the ID+NO regime).
    use gsino_core::budget::{uniform_budgets, LengthModel};
    use gsino_core::phase2::{solve_regions, RegionMode};
    use gsino_core::violations::check;
    use gsino_grid::sensitivity::SensitivityModel;
    use gsino_lsk::table::NoiseTable;
    use gsino_sino::solver::SolverConfig;
    let table = NoiseTable::calibrated(&tech);
    for rate in [0.3, 0.5] {
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        let sens = SensitivityModel::new(rate, 2002 ^ 0xC1C);
        let sino = solve_regions(
            &grid,
            &routes,
            &budgets,
            &sens,
            SolverConfig::default(),
            RegionMode::OrderOnly,
            0,
        )
        .unwrap();
        let mut ks: Vec<f64> = Vec::new();
        let mut occ: Vec<f64> = Vec::new();
        for (r, d) in sino.keys() {
            let sol = sino.solution(r, d).unwrap();
            occ.push(sol.nets.len() as f64);
            ks.extend(sol.k.iter().copied());
        }
        ks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        occ.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |v: &[f64], p: f64| v[((v.len() - 1) as f64 * p) as usize];
        let report = check(&circuit, &grid, &routes, &sino, &table, 0.15);
        println!(
            "rate {rate}: occupancy p50 {:.1} p90 {:.1} | K p50 {:.2} p90 {:.2} p99 {:.2} | violating nets {} ({:.1}%)",
            q(&occ, 0.5),
            q(&occ, 0.9),
            q(&ks, 0.5),
            q(&ks, 0.9),
            q(&ks, 0.99),
            report.violating_nets(),
            100.0 * report.violating_nets() as f64 / circuit.num_nets() as f64
        );
    }
}
