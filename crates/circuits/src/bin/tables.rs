//! Regenerates the paper's Tables 1–3 and the derived observations.
//!
//! ```text
//! cargo run -p gsino-circuits --bin tables --release -- [--scale 0.2]
//!     [--circuits ibm01,ibm02] [--rates 0.3,0.5] [--json out.json]
//! ```
//!
//! Environment variables `GSINO_SCALE` / `GSINO_CIRCUITS` provide the same
//! controls for the bench targets.

use gsino_circuits::experiment::{run_suite, ExperimentConfig};
use gsino_circuits::spec::CircuitSpec;

fn main() {
    let mut config = ExperimentConfig::from_env();
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .map(|v: f64| v.clamp(0.01, 1.0))
                    .unwrap_or(config.scale);
            }
            "--rates" => {
                i += 1;
                if let Some(list) = args.get(i) {
                    let rates: Vec<f64> = list
                        .split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .collect();
                    if !rates.is_empty() {
                        config.rates = rates;
                    }
                }
            }
            "--circuits" => {
                i += 1;
                if let Some(list) = args.get(i) {
                    let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
                    config.circuits = CircuitSpec::suite()
                        .into_iter()
                        .filter(|c| wanted.contains(&c.name.as_str()))
                        .collect();
                }
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(config.seed);
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: tables [--scale F] [--rates a,b] [--circuits ibm01,..] [--seed N] [--json FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "running suite: scale {:.2}, circuits {:?}, rates {:?}",
        config.scale,
        config
            .circuits
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>(),
        config.rates
    );
    let results = match run_suite(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("suite failed: {e}");
            std::process::exit(1);
        }
    };
    println!("scale = {:.2} of the calibrated suite\n", results.scale);
    println!("{}", results.render_table1());
    println!("{}", results.render_table2());
    println!("{}", results.render_table3());
    println!("{}", results.render_observations());
    println!("{}", results.render_runtime_breakdown());
    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&results) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eprintln!("failed to write {path}: {e}");
                }
            }
            Err(e) => eprintln!("failed to serialize results: {e}"),
        }
    }
}
