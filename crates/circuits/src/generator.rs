//! Synthetic circuit generation.
//!
//! Emulates the statistics of placed ISPD'98 netlists that matter to the
//! routing experiments: a 2-pin-dominated pin-count distribution with a
//! geometric tail, exponentially distributed net spans (most nets local, a
//! heavy tail of long global nets — the tail is what violates crosstalk
//! constraints), clustered hotspots (so congestion and sensitive-net
//! density vary across the die the way placed designs do), and an
//! auto-calibrated mean wire length matching the published per-circuit
//! averages.

use crate::spec::CircuitSpec;
use gsino_grid::geom::{Point, Rect};
use gsino_grid::net::{Circuit, Net};
use gsino_grid::GridError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of placement hotspots.
const CLUSTERS: usize = 12;

/// Fraction of nets anchored at a hotspot rather than placed uniformly.
/// DRAGON placements are congestion-driven, so hotspots are mild (~2× the
/// median region density, not an order of magnitude).
const CLUSTER_FRACTION: f64 = 0.25;

/// Fraction of nets drawn from the long (global) span population.
const GLOBAL_FRACTION: f64 = 0.30;

/// Global spans are this multiple of local spans on average.
const GLOBAL_SPAN_RATIO: f64 = 3.0;

/// Fraction of nets that are chip-crossing buses (clock spines, data
/// buses). Their long parallel runs are the crosstalk victims the paper's
/// Table 1 counts regardless of sensitivity rate.
const BUS_FRACTION: f64 = 0.05;

/// Bus spans relative to local spans.
const BUS_SPAN_RATIO: f64 = 7.0;

/// Generates a circuit matching `spec`, deterministically from `seed`.
///
/// # Errors
///
/// Propagates [`GridError`] from circuit validation (cannot occur for
/// well-formed specs: all pins are clamped into the die).
pub fn generate(spec: &CircuitSpec, seed: u64) -> Result<Circuit, GridError> {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(spec.die_w, spec.die_h))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters: Vec<Point> = (0..CLUSTERS)
        .map(|_| {
            Point::new(
                rng.gen_range(0.1..0.9) * spec.die_w,
                rng.gen_range(0.1..0.9) * spec.die_h,
            )
        })
        .collect();

    // Calibrate the local mean span so the *routed* wire length hits the
    // target. The routed tree of a net is close to its rectilinear Steiner
    // length, quantized upward by the region grid; a cheap proxy is the
    // rectilinear MST shortened by the typical Steiner saving plus half a
    // tile of quantization.
    let mut mean_span = spec.target_wl * 0.7;
    for _ in 0..4 {
        let mut pilot = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
        let sample = 1500.min(spec.num_nets.max(200));
        let mut total = 0.0;
        for i in 0..sample {
            let net = sample_net(i as u32, spec, &clusters, mean_span, &mut pilot);
            total += routed_wl_proxy(&net);
        }
        let measured = total / sample as f64;
        if measured > 0.0 {
            mean_span *= spec.target_wl / measured;
        }
        mean_span = mean_span.clamp(8.0, spec.die_w.max(spec.die_h));
    }

    let mut nets = Vec::with_capacity(spec.num_nets);
    for i in 0..spec.num_nets {
        nets.push(sample_net(i as u32, spec, &clusters, mean_span, &mut rng));
    }
    Circuit::new(spec.name.clone(), die, nets)
}

/// Samples one net: pin count, span class, anchor, pins.
fn sample_net(
    id: u32,
    spec: &CircuitSpec,
    clusters: &[Point],
    mean_span: f64,
    rng: &mut StdRng,
) -> Net {
    let degree = sample_degree(rng);
    let class: f64 = rng.gen();
    let span_mean = if class < BUS_FRACTION {
        mean_span * BUS_SPAN_RATIO
    } else if class < BUS_FRACTION + GLOBAL_FRACTION {
        mean_span * GLOBAL_SPAN_RATIO
    } else {
        mean_span
    };
    // Exponential span with the chosen mean, clamped to the die.
    let u: f64 = rng.gen_range(1e-9..1.0);
    let span = (-span_mean * (1.0 - u).ln()).clamp(8.0, 0.92 * spec.die_w.min(spec.die_h));
    // Anchor: hotspot or uniform.
    let anchor = if rng.gen::<f64>() < CLUSTER_FRACTION {
        let c = clusters[rng.gen_range(0..clusters.len())];
        let r = 0.15 * spec.die_w.min(spec.die_h);
        Point::new(c.x + rng.gen_range(-r..r), c.y + rng.gen_range(-r..r))
    } else {
        Point::new(
            rng.gen_range(0.0..spec.die_w),
            rng.gen_range(0.0..spec.die_h),
        )
    };
    let pins: Vec<Point> = (0..degree)
        .map(|_| {
            let x = anchor.x + rng.gen_range(-0.5..0.5) * span;
            let y = anchor.y + rng.gen_range(-0.5..0.5) * span;
            Point::new(x.clamp(0.0, spec.die_w), y.clamp(0.0, spec.die_h))
        })
        .collect();
    Net::new(id, pins)
}

/// Estimated routed wire length of a net: rectilinear MST with the classic
/// ~8% Steiner saving, plus half a routing tile of grid quantization.
fn routed_wl_proxy(net: &Net) -> f64 {
    let mst = gsino_steiner::rectilinear_mst(net.pins()).length;
    mst * 0.92 + 32.0
}

/// Pin-count distribution: 2-pin dominated with a geometric tail, matching
/// the shape of the ISPD'98 suite.
fn sample_degree(rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    match u {
        u if u < 0.55 => 2,
        u if u < 0.73 => 3,
        u if u < 0.83 => 4,
        u if u < 0.89 => 5,
        _ => {
            // Geometric tail from 6 up, capped at 16.
            let mut d = 6;
            while d < 16 && rng.gen::<f64>() < 0.55 {
                d += 1;
            }
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CircuitSpec {
        CircuitSpec::ibm01().scaled(0.15)
    }

    #[test]
    fn generates_requested_net_count() {
        let spec = quick_spec();
        let c = generate(&spec, 1).unwrap();
        assert_eq!(c.num_nets(), spec.num_nets);
        assert_eq!(c.name(), "ibm01");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = quick_spec();
        let a = generate(&spec, 9).unwrap();
        let b = generate(&spec, 9).unwrap();
        assert_eq!(a, b);
        let c = generate(&spec, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn all_pins_inside_die() {
        let spec = quick_spec();
        let c = generate(&spec, 3).unwrap();
        for net in c.nets() {
            for p in net.pins() {
                assert!(c.die().contains(*p));
            }
        }
    }

    #[test]
    fn mean_wirelength_calibrated() {
        // Full-size die so clamping doesn't bias the calibration.
        let spec = CircuitSpec::ibm01();
        let spec = CircuitSpec {
            num_nets: 3000,
            ..spec
        };
        let c = generate(&spec, 5).unwrap();
        let mean = c.mean_hpwl();
        assert!(
            (mean - spec.target_wl).abs() / spec.target_wl < 0.12,
            "mean {mean} vs target {}",
            spec.target_wl
        );
    }

    #[test]
    fn pin_distribution_dominated_by_two_pin() {
        let spec = CircuitSpec {
            num_nets: 4000,
            ..CircuitSpec::ibm01()
        };
        let c = generate(&spec, 7).unwrap();
        let two = c.nets().iter().filter(|n| n.degree() == 2).count() as f64;
        let frac = two / c.num_nets() as f64;
        assert!((frac - 0.55).abs() < 0.05, "2-pin fraction {frac}");
        let max_deg = c.nets().iter().map(Net::degree).max().unwrap();
        assert!(max_deg <= 16);
        assert!(c.nets().iter().all(|n| n.degree() >= 2));
    }

    #[test]
    fn span_distribution_has_heavy_tail() {
        let spec = CircuitSpec {
            num_nets: 4000,
            ..CircuitSpec::ibm01()
        };
        let c = generate(&spec, 11).unwrap();
        let target = spec.target_wl;
        let long = c.nets().iter().filter(|n| n.hpwl() > 2.0 * target).count() as f64;
        let frac = long / c.num_nets() as f64;
        // An exponential mix puts 8–20% of nets beyond 2× the mean.
        assert!(frac > 0.05 && frac < 0.3, "long-net fraction {frac}");
    }
}
