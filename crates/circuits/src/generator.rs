//! Synthetic circuit generation.
//!
//! Emulates the statistics of placed ISPD'98 netlists that matter to the
//! routing experiments: a 2-pin-dominated pin-count distribution with a
//! geometric tail, exponentially distributed net spans (most nets local, a
//! heavy tail of long global nets — the tail is what violates crosstalk
//! constraints), clustered hotspots (so congestion and sensitive-net
//! density vary across the die the way placed designs do), and an
//! auto-calibrated mean wire length matching the published per-circuit
//! averages.

use crate::io::Workload;
use crate::spec::{CircuitSpec, TARGET_DENSITY};
use gsino_grid::geom::{Point, Rect};
use gsino_grid::net::{Circuit, Net};
use gsino_grid::GridError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of placement hotspots.
const CLUSTERS: usize = 12;

/// Fraction of nets anchored at a hotspot rather than placed uniformly.
/// DRAGON placements are congestion-driven, so hotspots are mild (~2× the
/// median region density, not an order of magnitude).
const CLUSTER_FRACTION: f64 = 0.25;

/// Fraction of nets drawn from the long (global) span population.
const GLOBAL_FRACTION: f64 = 0.30;

/// Global spans are this multiple of local spans on average.
const GLOBAL_SPAN_RATIO: f64 = 3.0;

/// Fraction of nets that are chip-crossing buses (clock spines, data
/// buses). Their long parallel runs are the crosstalk victims the paper's
/// Table 1 counts regardless of sensitivity rate.
const BUS_FRACTION: f64 = 0.05;

/// Bus spans relative to local spans.
const BUS_SPAN_RATIO: f64 = 7.0;

/// Generates a circuit matching `spec`, deterministically from `seed`.
///
/// # Errors
///
/// Propagates [`GridError`] from circuit validation (cannot occur for
/// well-formed specs: all pins are clamped into the die).
pub fn generate(spec: &CircuitSpec, seed: u64) -> Result<Circuit, GridError> {
    generate_with(spec, seed, 0.0)
}

/// [`generate`] with a fanout knob: `fanout_boost` in `[0, 1)` shifts
/// pin-count mass toward higher degrees (0 is the stock ISPD'98-like
/// distribution — the RNG stream is bit-identical to [`generate`] there,
/// which the committed bench baselines rely on).
///
/// # Errors
///
/// As [`generate`], plus [`GridError::TooLarge`] when the requested net
/// count does not fit the `u32` net id space.
pub fn generate_with(
    spec: &CircuitSpec,
    seed: u64,
    fanout_boost: f64,
) -> Result<Circuit, GridError> {
    if spec.num_nets as u64 > u32::MAX as u64 {
        return Err(GridError::TooLarge {
            what: "nets",
            value: spec.num_nets as u64,
            limit: u32::MAX as u64,
        });
    }
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(spec.die_w, spec.die_h))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters: Vec<Point> = (0..CLUSTERS)
        .map(|_| {
            Point::new(
                rng.gen_range(0.1..0.9) * spec.die_w,
                rng.gen_range(0.1..0.9) * spec.die_h,
            )
        })
        .collect();

    // Calibrate the local mean span so the *routed* wire length hits the
    // target. The routed tree of a net is close to its rectilinear Steiner
    // length, quantized upward by the region grid; a cheap proxy is the
    // rectilinear MST shortened by the typical Steiner saving plus half a
    // tile of quantization.
    let mut mean_span = spec.target_wl * 0.7;
    for _ in 0..4 {
        let mut pilot = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
        let sample = 1500.min(spec.num_nets.max(200));
        let mut total = 0.0;
        for i in 0..sample {
            let net = sample_net(
                i as u32,
                spec,
                &clusters,
                mean_span,
                fanout_boost,
                &mut pilot,
            );
            total += routed_wl_proxy(&net);
        }
        let measured = total / sample as f64;
        if measured > 0.0 {
            mean_span *= spec.target_wl / measured;
        }
        mean_span = mean_span.clamp(8.0, spec.die_w.max(spec.die_h));
    }

    let mut nets = Vec::with_capacity(spec.num_nets);
    for i in 0..spec.num_nets {
        nets.push(sample_net(
            i as u32,
            spec,
            &clusters,
            mean_span,
            fanout_boost,
            &mut rng,
        ));
    }
    Circuit::new(spec.name.clone(), die, nets)
}

/// Samples one net: pin count, span class, anchor, pins.
fn sample_net(
    id: u32,
    spec: &CircuitSpec,
    clusters: &[Point],
    mean_span: f64,
    fanout_boost: f64,
    rng: &mut StdRng,
) -> Net {
    let degree = sample_degree(rng, fanout_boost);
    let class: f64 = rng.gen();
    let span_mean = if class < BUS_FRACTION {
        mean_span * BUS_SPAN_RATIO
    } else if class < BUS_FRACTION + GLOBAL_FRACTION {
        mean_span * GLOBAL_SPAN_RATIO
    } else {
        mean_span
    };
    // Exponential span with the chosen mean, clamped to the die.
    let u: f64 = rng.gen_range(1e-9..1.0);
    let span = (-span_mean * (1.0 - u).ln()).clamp(8.0, 0.92 * spec.die_w.min(spec.die_h));
    // Anchor: hotspot or uniform.
    let anchor = if rng.gen::<f64>() < CLUSTER_FRACTION {
        let c = clusters[rng.gen_range(0..clusters.len())];
        let r = 0.15 * spec.die_w.min(spec.die_h);
        Point::new(c.x + rng.gen_range(-r..r), c.y + rng.gen_range(-r..r))
    } else {
        Point::new(
            rng.gen_range(0.0..spec.die_w),
            rng.gen_range(0.0..spec.die_h),
        )
    };
    let pins: Vec<Point> = (0..degree)
        .map(|_| {
            let x = anchor.x + rng.gen_range(-0.5..0.5) * span;
            let y = anchor.y + rng.gen_range(-0.5..0.5) * span;
            Point::new(x.clamp(0.0, spec.die_w), y.clamp(0.0, spec.die_h))
        })
        .collect();
    Net::new(id, pins)
}

/// Estimated routed wire length of a net: rectilinear MST with the classic
/// ~8% Steiner saving, plus half a routing tile of grid quantization.
fn routed_wl_proxy(net: &Net) -> f64 {
    let mst = gsino_steiner::rectilinear_mst(net.pins()).length;
    mst * 0.92 + 32.0
}

/// The nominal region tile (µm) the scale ladder builds on — ladder dies
/// are exact integer multiples of it so grids and parsed workloads agree
/// bit-for-bit.
pub const LADDER_TILE: f64 = 64.0;

/// One rung of the 5k/50k/500k scale ladder: a net count plus the two
/// distribution knobs, from which the die is derived.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSpec {
    /// Stable workload id (`scale5k`, `scale50k`, `scale500k`) — the key
    /// the bench matrix and baselines use.
    pub id: String,
    /// Number of signal nets.
    pub num_nets: usize,
    /// Congestion knob: target mean track density as a multiple of
    /// [`TARGET_DENSITY`]. 1.0 reproduces the suite's nominal ~0.70;
    /// larger shrinks the die per net.
    pub congestion: f64,
    /// Fanout knob passed to [`generate_with`]: 0.0 is the stock
    /// pin-count distribution.
    pub fanout_boost: f64,
    /// Target average net wire length (µm).
    pub target_wl: f64,
    /// Generation seed.
    pub seed: u64,
}

impl ScaleSpec {
    /// A rung with the ibm01 wire-length target and the ladder's
    /// conventional seed.
    pub fn rung(id: &str, num_nets: usize, congestion: f64, fanout_boost: f64) -> Self {
        ScaleSpec {
            id: id.to_string(),
            num_nets,
            congestion,
            fanout_boost,
            target_wl: 639.0,
            seed: 2002,
        }
    }

    /// The standard ladder, smallest first. The 5k rung keeps the stock
    /// knobs (it runs the full pipeline in CI); the upper rungs turn the
    /// congestion and fanout screws so scale testing also covers hostile
    /// distributions.
    pub fn ladder() -> Vec<ScaleSpec> {
        vec![
            Self::rung("scale5k", 5_000, 1.0, 0.0),
            Self::rung("scale50k", 50_000, 1.1, 0.05),
            Self::rung("scale500k", 500_000, 1.2, 0.10),
        ]
    }

    /// Looks a rung up by workload id.
    pub fn by_id(id: &str) -> Option<ScaleSpec> {
        Self::ladder().into_iter().find(|s| s.id == id)
    }

    /// The derived circuit spec: a die sized from the suite's density
    /// formula so mean track density ≈ `congestion × TARGET_DENSITY` on a
    /// 64 µm / 16-track grid, with dimensions rounded up to whole tiles
    /// (near the ibm01 aspect ratio).
    pub fn circuit_spec(&self) -> CircuitSpec {
        let tracks = 16.0;
        let slots_per_net = self.target_wl / LADDER_TILE + 2.5;
        let density = TARGET_DENSITY * self.congestion;
        let regions = (self.num_nets as f64 * slots_per_net / (density * tracks * 2.0)).max(1.0);
        let aspect = 1533.0 / 1824.0; // ibm01 w/h
        let ny = (regions / aspect).sqrt().ceil().max(1.0);
        let nx = (regions / ny).ceil().max(1.0);
        CircuitSpec {
            name: self.id.clone(),
            num_nets: self.num_nets,
            die_w: nx * LADDER_TILE,
            die_h: ny * LADDER_TILE,
            target_wl: self.target_wl,
            published_nets: self.num_nets,
        }
    }
}

/// Generates a ladder rung as a full [`Workload`] (circuit + grid
/// parameters), ready to write, parse back, or feed the pipeline.
///
/// # Errors
///
/// Propagates [`GridError`] from generation and workload assembly
/// (including [`GridError::TooLarge`] if a rung overflows the `u32`
/// index spaces).
pub fn generate_scaled(spec: &ScaleSpec) -> Result<Workload, GridError> {
    let cspec = spec.circuit_spec();
    let circuit = generate_with(&cspec, spec.seed, spec.fanout_boost)?;
    let nx = (cspec.die_w / LADDER_TILE).round() as u32;
    let ny = (cspec.die_h / LADDER_TILE).round() as u32;
    let tech = gsino_grid::tech::Technology::itrs_100nm();
    let hc = tech.tracks_for(LADDER_TILE);
    let vc = tech.tracks_for(LADDER_TILE);
    let (name, die, nets) = circuit.into_parts();
    debug_assert_eq!(die.width(), nx as f64 * LADDER_TILE);
    Workload::new(name, nx, ny, hc, vc, LADDER_TILE, LADDER_TILE, nets)
}

/// An order-sensitive FNV-1a digest over a circuit's full content — name,
/// die corners, and every net's id and exact pin bits. Two circuits are
/// byte-identical for routing purposes iff their digests match, so the
/// committed-digest tests catch any accidental generator drift (which
/// would otherwise silently shift every bench baseline).
pub fn circuit_digest(c: &Circuit) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(c.name().as_bytes());
    for v in [
        c.die().lo().x,
        c.die().lo().y,
        c.die().hi().x,
        c.die().hi().y,
    ] {
        eat(&v.to_bits().to_le_bytes());
    }
    for net in c.nets() {
        eat(&net.id().to_le_bytes());
        eat(&(net.degree() as u64).to_le_bytes());
        for p in net.pins() {
            eat(&p.x.to_bits().to_le_bytes());
            eat(&p.y.to_bits().to_le_bytes());
        }
    }
    h
}

/// Pin-count distribution: 2-pin dominated with a geometric tail, matching
/// the shape of the ISPD'98 suite. `fanout_boost` in `[0, 1)` compresses
/// the low-degree thresholds toward 0, moving mass into the tail; at 0.0
/// the draw sequence is exactly the historical one (same thresholds, same
/// number of RNG calls per outcome).
fn sample_degree(rng: &mut StdRng, fanout_boost: f64) -> usize {
    let s = 1.0 - fanout_boost;
    let u: f64 = rng.gen();
    match u {
        u if u < 0.55 * s => 2,
        u if u < 0.73 * s => 3,
        u if u < 0.83 * s => 4,
        u if u < 0.89 * s => 5,
        _ => {
            // Geometric tail from 6 up, capped at 16.
            let mut d = 6;
            while d < 16 && rng.gen::<f64>() < 0.55 {
                d += 1;
            }
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CircuitSpec {
        CircuitSpec::ibm01().scaled(0.15)
    }

    #[test]
    fn generates_requested_net_count() {
        let spec = quick_spec();
        let c = generate(&spec, 1).unwrap();
        assert_eq!(c.num_nets(), spec.num_nets);
        assert_eq!(c.name(), "ibm01");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = quick_spec();
        let a = generate(&spec, 9).unwrap();
        let b = generate(&spec, 9).unwrap();
        assert_eq!(a, b);
        let c = generate(&spec, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn all_pins_inside_die() {
        let spec = quick_spec();
        let c = generate(&spec, 3).unwrap();
        for net in c.nets() {
            for p in net.pins() {
                assert!(c.die().contains(*p));
            }
        }
    }

    #[test]
    fn mean_wirelength_calibrated() {
        // Full-size die so clamping doesn't bias the calibration.
        let spec = CircuitSpec::ibm01();
        let spec = CircuitSpec {
            num_nets: 3000,
            ..spec
        };
        let c = generate(&spec, 5).unwrap();
        let mean = c.mean_hpwl();
        assert!(
            (mean - spec.target_wl).abs() / spec.target_wl < 0.12,
            "mean {mean} vs target {}",
            spec.target_wl
        );
    }

    #[test]
    fn pin_distribution_dominated_by_two_pin() {
        let spec = CircuitSpec {
            num_nets: 4000,
            ..CircuitSpec::ibm01()
        };
        let c = generate(&spec, 7).unwrap();
        let two = c.nets().iter().filter(|n| n.degree() == 2).count() as f64;
        let frac = two / c.num_nets() as f64;
        assert!((frac - 0.55).abs() < 0.05, "2-pin fraction {frac}");
        let max_deg = c.nets().iter().map(Net::degree).max().unwrap();
        assert!(max_deg <= 16);
        assert!(c.nets().iter().all(|n| n.degree() >= 2));
    }

    #[test]
    fn span_distribution_has_heavy_tail() {
        let spec = CircuitSpec {
            num_nets: 4000,
            ..CircuitSpec::ibm01()
        };
        let c = generate(&spec, 11).unwrap();
        let target = spec.target_wl;
        let long = c.nets().iter().filter(|n| n.hpwl() > 2.0 * target).count() as f64;
        let frac = long / c.num_nets() as f64;
        // An exponential mix puts 8–20% of nets beyond 2× the mean.
        assert!(frac > 0.05 && frac < 0.3, "long-net fraction {frac}");
    }
}
