//! Equivalence properties of the incremental Phase III pass against the
//! seed pass kept in `gsino_core::refine::reference`.
//!
//! Two contracts are property-tested here, mirroring
//! `router_equivalence.rs` (Phase I) and `sino_equivalence.rs` (Phase II):
//!
//! 1. **The tracker contract** — `refine::tracker::LskTracker` stays
//!    bitwise-equal to a from-scratch `violations::check` (same severity
//!    ranking, same violating sinks, same LSK values and voltages) across
//!    random region-edit sequences: budget tightenings *and* loosenings,
//!    re-solves, on random regions.
//! 2. **The pass contract** — `refine::refine` produces bit-identical
//!    final `Budgets`, `RegionSino` and `RefineStats` to
//!    `refine::reference::refine` across random circuits, sensitivity
//!    rates, constraint pairs and solver/refine configurations.

use gsino_core::budget::{uniform_budgets, Budgets, LengthModel};
use gsino_core::phase2::{solve_regions, RegionMode, RegionSino};
use gsino_core::refine::tracker::LskTracker;
use gsino_core::refine::{self, RefineConfig};
use gsino_core::router::{route_all, ShieldTerm, Weights};
use gsino_core::violations::check;
use gsino_grid::geom::{Point, Rect};
use gsino_grid::net::{Circuit, Net};
use gsino_grid::route::RouteSet;
use gsino_grid::sensitivity::SensitivityModel;
use gsino_grid::tech::Technology;
use gsino_grid::RegionGrid;
use gsino_lsk::table::NoiseTable;
use gsino_sino::solver::{SinoSolver, SolverConfig};
use proptest::prelude::*;

/// A dense single-row bus (every net couples hard) solved through Phase
/// II with budgets computed at `budget_vth` — loose budgets plus a strict
/// check voltage recreate the Manhattan-underestimate violations Phase
/// III repairs.
#[allow(clippy::type_complexity)]
fn bus_setup(
    n: u32,
    len: f64,
    rate: f64,
    budget_vth: f64,
    seed: u64,
) -> (
    Circuit,
    RegionGrid,
    RouteSet,
    NoiseTable,
    Budgets,
    RegionSino,
) {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(len.max(640.0), 640.0)).unwrap();
    let nets: Vec<Net> = (0..n)
        .map(|i| {
            Net::two_pin(
                i,
                Point::new(8.0, 320.0 + i as f64),
                Point::new(len - 8.0, 320.0 + i as f64),
            )
        })
        .collect();
    let circuit = Circuit::new("bus", die, nets).unwrap();
    let tech = Technology::itrs_100nm();
    let grid = RegionGrid::new(&circuit, &tech, 64.0).unwrap();
    let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
    let table = NoiseTable::calibrated(&tech);
    let budgets = uniform_budgets(
        &circuit,
        &grid,
        &routes,
        &table,
        budget_vth,
        LengthModel::Manhattan,
    )
    .unwrap();
    let sens = SensitivityModel::new(rate, seed);
    let sino = solve_regions(
        &grid,
        &routes,
        &budgets,
        &sens,
        SolverConfig::default(),
        RegionMode::Sino,
        1,
    )
    .unwrap();
    (circuit, grid, routes, table, budgets, sino)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random budget-edit + re-solve sequences keep every `LskTracker`
    /// aggregate bitwise-equal to a from-scratch `check` — severity
    /// ranking, violating sinks, LSK values and voltages alike.
    #[test]
    fn tracker_matches_check_across_random_edits(
        n in 4u32..12,
        rate_pct in 20u32..=80,
        seed in 0u64..50,
        vth_m in 10u32..=30,
        ops in prop::collection::vec((0usize..64, 0usize..64, 30u32..160), 1..12),
    ) {
        let vth = vth_m as f64 / 100.0;
        let (circuit, grid, routes, table, _, mut sino) =
            bus_setup(n, 2560.0, rate_pct as f64 / 100.0, 0.30, seed);
        let mut tracker = LskTracker::new(&circuit, &grid, &routes, &sino, &table, vth);
        let solver = SinoSolver::new(SolverConfig::default());
        let keys = sino.keys();
        prop_assert!(!keys.is_empty());
        for (key_sel, seg_sel, factor_pct) in ops {
            let (r, dir) = keys[key_sel % keys.len()];
            {
                let sol = sino.solution_mut(r, dir).expect("key enumerated");
                if sol.nets.is_empty() {
                    continue;
                }
                let seg = seg_sel % sol.nets.len();
                // Tighten or loosen one budget, then re-solve the region —
                // exactly the kind of local perturbation Phase III applies.
                let new_kth = (sol.instance.segment(seg).kth * factor_pct as f64 / 100.0)
                    .max(1e-9);
                sol.instance.set_kth(seg, new_kth).expect("valid budget");
                sol.layout = solver.solve(&sol.instance).expect("solvable");
                sol.refresh_k();
                let k = sol.k.clone();
                tracker.region_updated(r, dir, &k, &table);
            }
            let report = check(&circuit, &grid, &routes, &sino, &table, vth);
            prop_assert_eq!(tracker.nets_by_severity(), report.nets_by_severity());
            prop_assert_eq!(tracker.sink_violations(), report.sinks.clone());
            prop_assert_eq!(tracker.is_clean(), report.is_clean());
            prop_assert_eq!(tracker.violating_nets(), report.violating_nets());
        }
    }

    /// The incremental pass and the preserved seed pass agree bit for bit
    /// on every output across random workloads and configurations.
    #[test]
    fn refine_matches_reference(
        n in 6u32..14,
        rate_pct in 30u32..=70,
        seed in 0u64..50,
        vth_m in 12u32..=20,
        pass2_sel in 0u32..2,
        anneal_iters in 0usize..200,
    ) {
        let enable_pass2 = pass2_sel == 1;
        let vth = vth_m as f64 / 100.0;
        let (circuit, grid, routes, table, budgets0, sino0) =
            bus_setup(n, 3840.0, rate_pct as f64 / 100.0, 0.30, seed);
        let solver = match anneal_iters {
            0 => SolverConfig::default(),
            iters => SolverConfig::with_anneal(iters, seed),
        };
        let config = RefineConfig {
            enable_pass2,
            ..RefineConfig::default()
        };
        let (mut b_ref, mut s_ref) = (budgets0.clone(), sino0.clone());
        let stats_ref = refine::reference::refine(
            &circuit, &grid, &routes, &mut b_ref, &mut s_ref, &table, vth, solver, &config,
        )
        .expect("reference refine");
        let (mut b_inc, mut s_inc) = (budgets0, sino0);
        let stats_inc = refine::refine(
            &circuit, &grid, &routes, &mut b_inc, &mut s_inc, &table, vth, solver, &config,
        )
        .expect("incremental refine");
        prop_assert_eq!(stats_ref, stats_inc);
        prop_assert_eq!(b_ref, b_inc);
        prop_assert_eq!(s_ref, s_inc);
    }
}

/// One denser non-property check: a workload where both passes do real
/// work (violations fixed by pass 1, shields recovered by pass 2), with
/// the full output state compared.
#[test]
fn dense_refine_full_agreement() {
    let (circuit, grid, routes, table, budgets0, sino0) = bus_setup(14, 3840.0, 0.5, 0.30, 3);
    let before = check(&circuit, &grid, &routes, &sino0, &table, 0.15);
    assert!(before.violating_nets() > 0, "setup must violate at 0.15 V");
    let (mut b_ref, mut s_ref) = (budgets0.clone(), sino0.clone());
    let stats_ref = refine::reference::refine(
        &circuit,
        &grid,
        &routes,
        &mut b_ref,
        &mut s_ref,
        &table,
        0.15,
        SolverConfig::default(),
        &RefineConfig::default(),
    )
    .unwrap();
    let (mut b_inc, mut s_inc) = (budgets0, sino0);
    let stats_inc = refine::refine(
        &circuit,
        &grid,
        &routes,
        &mut b_inc,
        &mut s_inc,
        &table,
        0.15,
        SolverConfig::default(),
        &RefineConfig::default(),
    )
    .unwrap();
    assert_eq!(stats_ref, stats_inc);
    assert!(stats_inc.clean);
    assert!(stats_inc.pass1_nets > 0);
    assert_eq!(b_ref, b_inc);
    assert_eq!(s_ref, s_inc);
    assert!(check(&circuit, &grid, &routes, &s_inc, &table, 0.15).is_clean());
}
