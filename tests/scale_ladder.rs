//! Cross-scale invariant suite for the workload scale ladder
//! (`ScaleSpec::ladder()`): structural invariants every rung must
//! satisfy, full-pipeline invariants on a debug-friendly mini rung, and
//! `#[ignore]`d heavy legs for the 5k/50k/500k rungs that CI runs in
//! release (`cargo test --release -- --ignored`).

use gsino::circuits::generator::{circuit_digest, generate_scaled, ScaleSpec};
use gsino::circuits::io::{parse_workload_str, write_workload, Workload};
use gsino::core::pipeline::{run_flow_with_artifacts, Approach, GsinoConfig};
use gsino::grid::{Dir, Technology, TrackUsage};

/// Structural invariants shared by every rung, any tier.
fn assert_structure(spec: &ScaleSpec, wl: &Workload) {
    let circuit = wl.circuit();
    assert_eq!(circuit.num_nets(), spec.num_nets, "{}: net count", spec.id);
    let die = circuit.die();
    assert!(
        (die.width() - f64::from(wl.nx()) * wl.tile_w()).abs() < 1e-6,
        "{}: die width is nx tiles",
        spec.id
    );
    assert!(
        (die.height() - f64::from(wl.ny()) * wl.tile_h()).abs() < 1e-6,
        "{}: die height is ny tiles",
        spec.id
    );
    let mut prev = None;
    for net in circuit.nets() {
        assert!(net.degree() > 0, "{}: empty net", spec.id);
        if let Some(p) = prev {
            assert!(net.id() > p, "{}: ids strictly increasing", spec.id);
        }
        prev = Some(net.id());
        for pin in net.pins() {
            assert!(die.contains(*pin), "{}: pin escapes the die", spec.id);
        }
    }
    // The grid the file dictates must construct under the stock process.
    let grid = wl.grid(&Technology::itrs_100nm()).expect("grid builds");
    assert_eq!(
        u64::from(grid.num_regions()),
        u64::from(wl.nx()) * u64::from(wl.ny()),
        "{}: grid dimensions",
        spec.id
    );
}

/// Generate → write → parse → identity, then the structural checks.
fn round_trip_rung(spec: &ScaleSpec) -> Workload {
    let wl = generate_scaled(spec).expect("rung generates");
    let mut text = Vec::new();
    write_workload(&wl, &mut text).expect("writes");
    let parsed =
        parse_workload_str(&String::from_utf8(text).expect("utf-8")).expect("written rung parses");
    assert_eq!(parsed, wl, "{}: parse ∘ write identity", spec.id);
    assert_structure(spec, &wl);
    wl
}

#[test]
fn ladder_is_well_formed() {
    let ladder = ScaleSpec::ladder();
    assert_eq!(ladder.len(), 3);
    for pair in ladder.windows(2) {
        assert!(
            pair[0].num_nets < pair[1].num_nets,
            "rungs ordered smallest first"
        );
        assert!(pair[0].congestion <= pair[1].congestion);
        assert!(pair[0].fanout_boost <= pair[1].fanout_boost);
    }
    for spec in &ladder {
        let found = ScaleSpec::by_id(&spec.id).expect("by_id finds every rung");
        assert_eq!(&found, spec);
    }
    assert!(ScaleSpec::by_id("nope").is_none());
}

#[test]
fn mini_rung_round_trips() {
    round_trip_rung(&ScaleSpec::rung("mini", 300, 1.0, 0.0));
}

/// Full three-phase pipeline on a debug-friendly rung: every net routed,
/// no capacity overflow, a violation-free final state, self-consistent
/// artifacts, and a deterministic outcome.
#[test]
fn mini_rung_full_pipeline_invariants() {
    let spec = ScaleSpec::rung("mini", 300, 1.0, 0.0);
    let wl = round_trip_rung(&spec);
    let config = GsinoConfig::builder()
        .threads(1)
        .build()
        .expect("valid config");
    let (outcome, internals) =
        run_flow_with_artifacts(wl.circuit(), &config, Approach::Gsino).expect("pipeline runs");

    assert_eq!(
        outcome.routes.len(),
        wl.circuit().num_nets(),
        "every net routed"
    );
    // `wirelength_stats` counts HPWL for trivial single-region routes,
    // so the reported total dominates the route-set sum.
    let routed_um = outcome.routes.total_wirelength(&internals.grid);
    assert!(
        outcome.wirelength.total_um.is_finite()
            && outcome.wirelength.total_um >= routed_um - 1e-6
            && routed_um > 0.0,
        "reported wirelength ({}) must be finite and dominate the route-set sum ({routed_um})",
        outcome.wirelength.total_um
    );
    assert_eq!(
        outcome.usage.total_shields(),
        outcome.total_shields,
        "usage and outcome agree on shields"
    );
    // The outcome's usage must be exactly what the route set implies —
    // same per-region net counts as a from-scratch rebuild. (Demand may
    // legitimately exceed capacity: the router trades overflow against
    // noise, so overflow is reported, not forbidden.)
    let nets_only = TrackUsage::from_routes(&internals.grid, &outcome.routes);
    for r in 0..nets_only.num_regions() {
        for dir in [Dir::H, Dir::V] {
            assert_eq!(
                nets_only.nets(r as u32, dir),
                outcome.usage.nets(r as u32, dir),
                "usage in region {r} must derive from the routes"
            );
        }
    }
    assert_eq!(
        outcome.violations.violating_nets(),
        0,
        "the refined state is violation-free"
    );
    for (&(net, _region, _dir), &kth) in internals.budgets.iter() {
        assert!(
            kth.is_finite() && kth >= 0.0,
            "budget for net {net} must be finite and non-negative, got {kth}"
        );
    }

    // Same inputs, same outcome: the full flow is deterministic.
    let (again, _) =
        run_flow_with_artifacts(wl.circuit(), &config, Approach::Gsino).expect("pipeline runs");
    assert_eq!(again.routes, outcome.routes);
    assert_eq!(again.total_shields, outcome.total_shields);
}

#[test]
fn rungs_are_distinct_workloads() {
    let mini = generate_scaled(&ScaleSpec::rung("mini", 300, 1.0, 0.0)).expect("mini");
    let mini2 = generate_scaled(&ScaleSpec::rung("mini2", 301, 1.0, 0.0)).expect("mini2");
    assert_ne!(
        circuit_digest(mini.circuit()),
        circuit_digest(mini2.circuit())
    );
}

// ---------------------------------------------------------------------
// Heavy legs: `cargo test --release -- --ignored` (the CI scale-ladder
// job). Debug-mode tier-1 skips them.
// ---------------------------------------------------------------------

#[test]
#[ignore = "heavy: run in release via -- --ignored (CI scale-ladder job)"]
fn scale5k_round_trips() {
    let spec = ScaleSpec::by_id("scale5k").expect("ladder rung");
    round_trip_rung(&spec);
}

#[test]
#[ignore = "heavy: run in release via -- --ignored (CI scale-ladder job)"]
fn scale50k_round_trips() {
    let spec = ScaleSpec::by_id("scale50k").expect("ladder rung");
    round_trip_rung(&spec);
}

#[test]
#[ignore = "heavy: run in release via -- --ignored (CI scale-ladder job)"]
fn scale500k_round_trips() {
    let spec = ScaleSpec::by_id("scale500k").expect("ladder rung");
    round_trip_rung(&spec);
}

#[test]
#[ignore = "heavy: run in release via -- --ignored (CI scale-ladder job)"]
fn upper_rungs_are_distinct() {
    let ids: Vec<u64> = ScaleSpec::ladder()
        .iter()
        .map(|s| circuit_digest(generate_scaled(s).expect("generates").circuit()))
        .collect();
    assert_eq!(ids.len(), 3);
    assert!(ids[0] != ids[1] && ids[1] != ids[2] && ids[0] != ids[2]);
}
