//! Property-based tests (proptest) over the core invariants.

use gsino::grid::{Point, Rect, RegionGrid, SensitivityModel, Technology};
use gsino::lsk::NoiseTable;
use gsino::numeric::{isotonic_increasing, PiecewiseLinear};
use gsino::sino::keff::{cap_violations, coupling, evaluate};
use gsino::sino::{instance::SegmentSpec, Layout, SinoInstance, SinoSolver, SolverConfig};
use gsino::steiner::{iterated_one_steiner, rectilinear_mst};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), 2..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Steiner heuristic never beats the HPWL lower bound and never
    /// loses to the MST upper bound.
    #[test]
    fn steiner_between_hpwl_and_mst(pins in arb_points(9)) {
        let mst = rectilinear_mst(&pins).length;
        let steiner = iterated_one_steiner(&pins).length();
        let bbox = Rect::bounding(&pins, 1e-6).unwrap();
        prop_assert!(steiner <= mst + 1e-9);
        prop_assert!(steiner + 1e-9 >= bbox.half_perimeter().min(mst));
    }

    /// Inserting a shield anywhere never increases anyone's coupling.
    #[test]
    fn shield_insertion_is_monotone(
        n in 2usize..10,
        rate in 0.0f64..1.0,
        seed in 0u64..1000,
        gap_frac in 0.0f64..1.0,
    ) {
        let segs: Vec<SegmentSpec> =
            (0..n).map(|i| SegmentSpec { net: i as u32, kth: 1.0 }).collect();
        let inst =
            SinoInstance::from_model(segs, &SensitivityModel::new(rate, seed)).unwrap();
        let base = Layout::from_order(&(0..n).collect::<Vec<_>>());
        let k0 = coupling(&inst, &base);
        let mut shielded = base.clone();
        let gap = ((n as f64) * gap_frac) as usize;
        shielded.insert_shield(gap.min(shielded.area()));
        let k1 = coupling(&inst, &shielded);
        for i in 0..n {
            prop_assert!(k1[i] <= k0[i] + 1e-12);
        }
        prop_assert!(cap_violations(&inst, &shielded) <= cap_violations(&inst, &base));
    }

    /// The SINO solver always returns a feasible layout containing every
    /// segment exactly once.
    #[test]
    fn sino_solutions_are_feasible(
        n in 1usize..12,
        rate in 0.0f64..1.0,
        kth in 0.05f64..3.0,
        seed in 0u64..500,
    ) {
        let segs: Vec<SegmentSpec> =
            (0..n).map(|i| SegmentSpec { net: i as u32, kth }).collect();
        let inst =
            SinoInstance::from_model(segs, &SensitivityModel::new(rate, seed)).unwrap();
        let layout = SinoSolver::new(SolverConfig::default()).solve(&inst).unwrap();
        prop_assert!(layout.validate(n).is_ok());
        let eval = evaluate(&inst, &layout);
        prop_assert!(eval.feasible);
        prop_assert!(layout.area() >= n);
    }

    /// The noise table is monotone and its inverse is consistent.
    #[test]
    fn noise_table_monotone_and_invertible(
        lsk1 in 0.0f64..6000.0,
        lsk2 in 0.0f64..6000.0,
        v in 0.101f64..0.199,
    ) {
        let table = NoiseTable::calibrated(&Technology::itrs_100nm());
        let (lo, hi) = if lsk1 <= lsk2 { (lsk1, lsk2) } else { (lsk2, lsk1) };
        prop_assert!(table.voltage(lo) <= table.voltage(hi) + 1e-12);
        let lsk = table.lsk_for_voltage(v);
        prop_assert!((table.voltage(lsk) - v).abs() < 1e-6);
    }

    /// Isotonic regression output is monotone and preserves the mean.
    #[test]
    fn isotonic_properties(ys in prop::collection::vec(-100.0f64..100.0, 1..40)) {
        let out = isotonic_increasing(&ys);
        prop_assert_eq!(out.len(), ys.len());
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        let mean_in: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
        let mean_out: f64 = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!((mean_in - mean_out).abs() < 1e-9);
    }

    /// Piecewise-linear eval/inverse round-trip on strictly monotone tables.
    #[test]
    fn pwl_roundtrip(step in 0.1f64..10.0, x in 0.0f64..1.0) {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64 * step).collect();
        let f = PiecewiseLinear::new(xs, ys).unwrap();
        let q = x * 9.0;
        prop_assert!((f.inverse(f.eval(q)) - q).abs() < 1e-9);
    }

    /// Every point of the die maps to a region whose rectangle contains it.
    #[test]
    fn region_mapping_is_consistent(
        x in 0.0f64..640.0,
        y in 0.0f64..640.0,
        tile in 32.0f64..128.0,
    ) {
        let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
        let grid = RegionGrid::from_die(die, &Technology::itrs_100nm(), tile).unwrap();
        let p = Point::new(x, y);
        let r = grid.region_of(p);
        let rect = grid.region_rect(r);
        prop_assert!(rect.contains(p), "point {p} region {r} rect {rect}");
    }

    /// Sensitivity is symmetric, irreflexive, and respects rate bounds.
    #[test]
    fn sensitivity_model_properties(
        rate in 0.0f64..1.0,
        seed in 0u64..10_000,
        a in 0u32..5000,
        b in 0u32..5000,
    ) {
        let m = SensitivityModel::new(rate, seed);
        prop_assert_eq!(m.is_sensitive(a, b), m.is_sensitive(b, a));
        prop_assert!(!m.is_sensitive(a, a));
    }
}
