//! Conformance suite for the wire protocol (`PROTOCOL.md`), driven
//! through the public facade: every request/response/edit shape round
//! trips, malformed/oversize/truncated frames are rejected with the
//! documented connection-fatal kinds (and never a panic), and a session
//! driven over loopback TCP retires **bit-identical** to one driven
//! through an in-process [`SessionHandle`](gsino::SessionHandle).

use gsino::core::pipeline::{run_flow_with_artifacts, Approach};
use gsino::core::service::net::{
    read_frame, write_frame, FrameError, NetClient, NetServer, RequestEnvelope, ResponseEnvelope,
    MAX_FRAME, PROTOCOL_VERSION,
};
use gsino::grid::{Circuit, CircuitEdit, Net, Point, Rect};
use gsino::sino::nss::NssModel;
use gsino::{
    EcoEdit, EcoSession, ErrorKind, GsinoConfig, RoutingService, ServiceConfig, ServiceRequest,
    ServiceResponse, SessionStats,
};
use proptest::prelude::*;
use std::io::Write;
use std::sync::Arc;

fn small_circuit(name: &str, n: u32) -> Circuit {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
    let nets: Vec<Net> = (0..n)
        .map(|i| {
            let x = 16.0 + (i as f64 * 37.0) % 600.0;
            let y = 16.0 + (i as f64 * 53.0) % 600.0;
            Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
        })
        .collect();
    Circuit::new(name, die, nets).unwrap()
}

fn fast_config() -> GsinoConfig {
    GsinoConfig::builder()
        .nss_model(NssModel::from_coefficients(
            [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
            0.5,
        ))
        .threads(1)
        .build()
        .unwrap()
}

fn assert_matches_scratch(session: &EcoSession) {
    let (outcome, internals) =
        run_flow_with_artifacts(session.circuit(), session.config(), Approach::Gsino).unwrap();
    assert_eq!(session.routes(), &outcome.routes, "routes diverged");
    assert_eq!(session.budgets(), &internals.budgets, "budgets diverged");
    assert_eq!(session.sino(), &internals.sino, "sino diverged");
}

/// Serialize → parse → serialize: the JSON must be byte-stable, which
/// both proves the parse saw every field and pins the canonical shape.
fn round_trip_stable<T: serde::Serialize + serde::Deserialize>(value: &T) -> String {
    let json = serde_json::to_string(value).unwrap();
    let parsed: T = serde_json::from_str(&json).unwrap();
    let again = serde_json::to_string(&parsed).unwrap();
    assert_eq!(json, again, "round trip not byte-stable");
    json
}

fn every_edit() -> Vec<EcoEdit> {
    vec![
        EcoEdit::Circuit(CircuitEdit::AddNet {
            net: Net::two_pin(100, Point::new(40.0, 40.0), Point::new(600.0, 600.0)),
        }),
        EcoEdit::Circuit(CircuitEdit::RemoveNet { net: 5 }),
        EcoEdit::Circuit(CircuitEdit::RePin {
            net: 2,
            pins: vec![Point::new(10.0, 10.0), Point::new(200.0, 300.0)],
        }),
        EcoEdit::TightenVth {
            net: 1,
            sink: 0,
            vth: 0.12,
        },
        EcoEdit::RelaxVth { net: 1, sink: 0 },
        EcoEdit::Retile { tile_um: 48.0 },
        EcoEdit::Reweight {
            weights: gsino::core::router::Weights {
                alpha: 1.0,
                beta: 0.5,
                gamma: 0.25,
            },
        },
    ]
}

#[test]
fn every_request_variant_round_trips() {
    let requests = vec![
        ServiceRequest::Open {
            circuit: Box::new(small_circuit("rt", 4)),
            config: Box::new(fast_config()),
        },
        ServiceRequest::Edit(every_edit()),
        ServiceRequest::Query,
        ServiceRequest::Stats,
        ServiceRequest::Verify,
        ServiceRequest::Close,
    ];
    for (i, req) in requests.into_iter().enumerate() {
        let envelope = RequestEnvelope {
            v: PROTOCOL_VERSION,
            id: i as u64 + 1,
            session: "rt".to_string(),
            deadline_ms: if i % 2 == 0 { Some(250) } else { None },
            req,
        };
        let json = round_trip_stable(&envelope);
        assert!(json.contains("\"type\""), "payload must be type-tagged");
    }
}

#[test]
fn every_response_variant_round_trips() {
    let stats = SessionStats::default();
    let responses = vec![
        ServiceResponse::Opened {
            session: "rt".to_string(),
        },
        ServiceResponse::Committed(gsino::EditReceipt {
            edits: 2,
            batch_requests: 3,
            batch_edits: 5,
            class: gsino::core::session::EditClass::BudgetOnly,
            queue_ms: 1.5,
            commit_ms: 7.25,
        }),
        ServiceResponse::Snapshot(gsino::SessionSnapshot {
            session: "rt".to_string(),
            nets: 12,
            clean: true,
            violating_nets: 0,
            stats,
            last_divergence: Some("detail".to_string()),
        }),
        ServiceResponse::Stats(gsino::core::service::StatsReport {
            session: "rt".to_string(),
            queue_depth: 4,
            stats,
            queue_ms: gsino::LatencySummary {
                count: 9,
                mean_ms: 1.0,
                p50_ms: 0.75,
                p95_ms: 3.5,
                max_ms: 4.0,
            },
            commit_ms: gsino::LatencySummary::default(),
            canceled_in_queue: 2,
            pool: gsino::core::service::PoolStats {
                pool_threads: 2,
                steals: 5,
                parks: 11,
                runnable_sessions: 1,
                pinning_violations: 0,
                uptime_ms: 1234.5,
                workers: vec![
                    gsino::core::service::WorkerGauge {
                        tasks: 7,
                        busy_ms: 42.0,
                    },
                    gsino::core::service::WorkerGauge::default(),
                ],
            },
        }),
        ServiceResponse::Verified { clean: false },
        ServiceResponse::Closed {
            session: "rt".to_string(),
            stats,
        },
    ];
    for (i, resp) in responses.into_iter().enumerate() {
        round_trip_stable(&ResponseEnvelope {
            v: PROTOCOL_VERSION,
            id: i as u64 + 1,
            outcome: Ok(resp),
        });
    }
    // The error arm, and the exactly-one-of-ok/err rule.
    let err_json = round_trip_stable(&ResponseEnvelope {
        v: PROTOCOL_VERSION,
        id: 7,
        outcome: Err(gsino::core::service::net::WireError {
            kind: "overloaded".to_string(),
            retryable: true,
            message: "mailbox full".to_string(),
        }),
    });
    assert!(err_json.contains("\"err\"") && !err_json.contains("\"ok\""));
    assert!(serde_json::from_str::<ResponseEnvelope>(r#"{"v":1,"id":1}"#).is_err());
}

#[test]
fn every_edit_variant_round_trips() {
    for edit in every_edit() {
        let json = round_trip_stable(&ServiceRequest::Edit(vec![edit]));
        assert!(json.contains("\"edits\""));
    }
}

#[test]
fn open_request_revalidates_the_circuit() {
    // A wire circuit with a pin outside its die must be rejected at
    // decode — derived deserialization alone would bypass Circuit::new.
    let good = serde_json::to_string(&ServiceRequest::Open {
        circuit: Box::new(small_circuit("bad", 3)),
        config: Box::new(fast_config()),
    })
    .unwrap();
    // Net 0 pins at (16,16)/(604,604): move one far outside the 640x640 die.
    let bad = good.replace("604", "9999");
    assert!(bad.contains("9999"), "test setup: pin must be off-die");
    assert!(serde_json::from_str::<ServiceRequest>(&bad).is_err());
    assert!(serde_json::from_str::<ServiceRequest>(&good).is_ok());
}

#[test]
fn frame_codec_rejects_malformed_oversize_truncated() {
    // Oversize prefix: rejected before any body is read.
    let mut huge: &[u8] = &[0x7f, 0xff, 0xff, 0xff];
    assert!(matches!(
        read_frame(&mut huge, MAX_FRAME),
        Err(FrameError::Oversize { .. })
    ));
    // Truncation inside prefix and body.
    let mut partial: &[u8] = &[0, 0];
    assert!(matches!(
        read_frame(&mut partial, MAX_FRAME),
        Err(FrameError::Truncated { .. })
    ));
    let mut encoded = Vec::new();
    write_frame(&mut encoded, b"{\"v\":1}", MAX_FRAME).unwrap();
    encoded.truncate(encoded.len() - 3);
    let mut cursor = &encoded[..];
    assert!(matches!(
        read_frame(&mut cursor, MAX_FRAME),
        Err(FrameError::Truncated { .. })
    ));
    // Zero-length frames are malformed in both directions.
    let mut zero: &[u8] = &[0, 0, 0, 0];
    assert!(matches!(
        read_frame(&mut zero, MAX_FRAME),
        Err(FrameError::Malformed(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte prefixes never panic the frame reader: every input
    /// is a clean EOF, a frame, or a typed `FrameError`.
    #[test]
    fn random_bytes_never_panic_the_codec(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let mut cursor = &bytes[..];
        let _ = read_frame(&mut cursor, 1024);
    }

    /// Arbitrary frame bodies never panic the envelope parser.
    #[test]
    fn random_bodies_never_panic_the_parser(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = serde_json::from_str::<RequestEnvelope>(text);
            let _ = serde_json::from_str::<ResponseEnvelope>(text);
        }
    }
}

/// Reads the hello then returns the raw stream, for tests that need to
/// misbehave below the client library.
fn raw_connect(server: &NetServer) -> std::net::TcpStream {
    let mut stream = std::net::TcpStream::connect(server.local_addr().unwrap()).unwrap();
    let hello = read_frame(&mut stream, MAX_FRAME).unwrap().unwrap();
    let text = std::str::from_utf8(&hello).unwrap();
    assert!(text.contains("gsino-wire"));
    stream
}

/// Reads one response envelope off a raw stream.
fn read_response(stream: &mut std::net::TcpStream) -> Option<ResponseEnvelope> {
    let body = read_frame(stream, MAX_FRAME).unwrap()?;
    Some(serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap())
}

#[test]
fn server_answers_garbage_with_fatal_error_frames() {
    let service = Arc::new(RoutingService::new(ServiceConfig::default()));
    let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).unwrap();

    // A well-framed but non-JSON body: uncorrelated (id 0) fatal error,
    // then the connection closes.
    let mut stream = raw_connect(&server);
    write_frame(&mut stream, &[0xff, 0xfe, 0x00], MAX_FRAME).unwrap();
    let envelope = read_response(&mut stream).expect("error frame before close");
    assert_eq!(envelope.id, 0);
    let err = envelope.outcome.unwrap_err();
    assert_eq!(err.kind, "frame_malformed");
    assert!(!err.retryable);
    assert!(
        read_response(&mut stream).is_none(),
        "connection must close"
    );

    // An oversize length prefix: rejected before the body, same shape.
    let mut stream = raw_connect(&server);
    stream.write_all(&[0x7f, 0xff, 0xff, 0xff]).unwrap();
    stream.flush().unwrap();
    let envelope = read_response(&mut stream).expect("error frame before close");
    assert_eq!(envelope.id, 0);
    assert_eq!(envelope.outcome.unwrap_err().kind, "frame_oversize");

    // A version the server does not speak: correlated, kind `protocol`.
    let mut stream = raw_connect(&server);
    let body = r#"{"v":99,"id":41,"session":"x","deadline_ms":null,"req":{"type":"query"}}"#;
    write_frame(&mut stream, body.as_bytes(), MAX_FRAME).unwrap();
    let envelope = read_response(&mut stream).expect("error frame before close");
    assert_eq!(envelope.id, 41);
    assert_eq!(envelope.outcome.unwrap_err().kind, "protocol");
    assert!(
        read_response(&mut stream).is_none(),
        "connection must close"
    );

    server.shutdown();
}

#[test]
fn loopback_session_is_bit_identical_to_in_process() {
    let batches: Vec<Vec<EcoEdit>> = vec![
        vec![EcoEdit::TightenVth {
            net: 1,
            sink: 0,
            vth: 0.12,
        }],
        vec![EcoEdit::Circuit(CircuitEdit::AddNet {
            net: Net::two_pin(100, Point::new(40.0, 40.0), Point::new(600.0, 600.0)),
        })],
        vec![
            EcoEdit::TightenVth {
                net: 3,
                sink: 0,
                vth: 0.11,
            },
            EcoEdit::RelaxVth { net: 1, sink: 0 },
        ],
    ];

    // Over the wire.
    let service = Arc::new(RoutingService::new(ServiceConfig::default()));
    let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut client = NetClient::connect_tcp(server.local_addr().unwrap()).unwrap();
    client
        .open("twin", small_circuit("twin", 12), fast_config())
        .unwrap();
    for batch in &batches {
        let receipt = client.edit("twin", batch.clone()).unwrap();
        assert_eq!(receipt.edits, batch.len());
    }
    let snapshot = client.query("twin").unwrap();
    assert_eq!(snapshot.nets, 13);
    assert!(client.verify("twin").unwrap());
    // Retire server-side so the session object itself is comparable.
    let over_wire = service.close("twin").unwrap();
    server.shutdown();

    // The same history through an in-process handle.
    let local = RoutingService::new(ServiceConfig::default());
    let handle = local
        .open("twin", small_circuit("twin", 12), fast_config())
        .unwrap();
    for batch in &batches {
        handle.edit(batch.clone()).unwrap();
    }
    let in_process = local.close("twin").unwrap();

    assert_eq!(over_wire.routes(), in_process.routes(), "routes diverged");
    assert_eq!(
        over_wire.budgets(),
        in_process.budgets(),
        "budgets diverged"
    );
    assert_eq!(over_wire.sino(), in_process.sino(), "sino diverged");
    assert_eq!(over_wire.stats().edits_applied, 4);
    assert_matches_scratch(&over_wire);
}

#[test]
fn pipelined_requests_resolve_out_of_order_waits() {
    let service = Arc::new(RoutingService::new(ServiceConfig::default()));
    let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut client = NetClient::connect_tcp(server.local_addr().unwrap()).unwrap();
    client
        .open("pipe", small_circuit("pipe", 10), fast_config())
        .unwrap();

    // Fire a burst without waiting, then collect in reverse order: the
    // correlation ids must route every outcome to the right waiter even
    // though the server may coalesce the edits into fewer commits.
    let ids: Vec<u64> = (0..4u32)
        .map(|i| {
            client
                .send(
                    "pipe",
                    ServiceRequest::Edit(vec![EcoEdit::TightenVth {
                        net: i,
                        sink: 0,
                        vth: 0.10 + 0.005 * f64::from(i),
                    }]),
                    None,
                )
                .unwrap()
        })
        .collect();
    let mut coalesced = 0usize;
    for id in ids.iter().rev() {
        match client.wait(*id).unwrap() {
            ServiceResponse::Committed(receipt) => {
                assert_eq!(receipt.edits, 1);
                coalesced = coalesced.max(receipt.batch_requests);
            }
            other => panic!("expected committed, got {other:?}"),
        }
    }

    // Stats over the wire reflect the burst.
    let report = client.stats("pipe").unwrap();
    assert_eq!(report.stats.edits_applied, 4);
    assert_eq!(report.queue_depth, 0);
    assert_eq!(report.queue_ms.count, 4);
    assert!(report.stats.commits >= 1);
    assert!(coalesced >= 1);

    let stats = client.close("pipe").unwrap();
    assert_eq!(stats.edits_applied, 4);
    server.shutdown();
}

#[test]
fn deadlines_and_typed_errors_cross_the_wire() {
    let service = Arc::new(RoutingService::new(ServiceConfig::default()));
    let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut client = NetClient::connect_tcp(server.local_addr().unwrap()).unwrap();
    client
        .open("err", small_circuit("err", 10), fast_config())
        .unwrap();

    // A zero deadline expires while the opening flow still builds: the
    // wire answer must classify as `canceled` and retryable, exactly as
    // the in-process error does.
    let expired = client
        .call_within(
            "err",
            ServiceRequest::Edit(vec![EcoEdit::TightenVth {
                net: 2,
                sink: 0,
                vth: 0.11,
            }]),
            0,
        )
        .unwrap_err();
    assert_eq!(expired.kind(), ErrorKind::Canceled);
    assert!(expired.is_retryable());

    // A stale net id fails at apply time with its typed kind.
    let stale = client
        .edit(
            "err",
            vec![EcoEdit::TightenVth {
                net: 999,
                sink: 0,
                vth: 0.11,
            }],
        )
        .unwrap_err();
    assert_eq!(stale.kind(), ErrorKind::UnknownId);
    assert!(!stale.is_retryable());

    // An unknown session answers `session_closed`.
    let ghost = client.query("ghost").unwrap_err();
    assert_eq!(ghost.kind(), ErrorKind::SessionClosed);

    let session = service.close("err").unwrap();
    assert_eq!(session.stats().commits, 0);
    assert_matches_scratch(&session);
    server.shutdown();
}

#[test]
fn shutdown_under_load_drains_clients_cleanly() {
    let service = Arc::new(RoutingService::new(ServiceConfig::default()));
    let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.local_addr().unwrap();
    for name in ["a", "b"] {
        service
            .open(name, small_circuit(name, 10), fast_config())
            .unwrap();
    }

    let clients: Vec<_> = (0..4u32)
        .map(|i| {
            std::thread::spawn(move || {
                let session = if i % 2 == 0 { "a" } else { "b" };
                let mut client = match NetClient::connect_tcp(addr) {
                    Ok(c) => c,
                    Err(_) => return, // raced the shutdown at connect
                };
                for round in 0..8u32 {
                    let outcome = client.edit(
                        session,
                        vec![EcoEdit::TightenVth {
                            net: i,
                            sink: 0,
                            vth: 0.10 + 0.001 * f64::from(round),
                        }],
                    );
                    // Every outcome is a receipt or a typed error — a
                    // dropped connection surfaces as a connection-fatal
                    // remote kind, never a hang or a panic.
                    if outcome.is_err() {
                        return;
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(30));
    server.shutdown();
    for client in clients {
        client.join().expect("client panicked");
    }

    // The sessions themselves outlive the network front and are intact.
    for name in ["a", "b"] {
        let session = service.close(name).unwrap();
        assert!(!session.in_transaction(), "session `{name}` torn");
        assert_matches_scratch(&session);
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_speaks_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("gsino-wire-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gsino.sock");
    let service = Arc::new(RoutingService::new(ServiceConfig::default()));
    let server = NetServer::bind_unix(&path, Arc::clone(&service)).unwrap();

    let mut client = NetClient::connect_unix(&path).unwrap();
    assert_eq!(client.hello().proto, "gsino-wire");
    client
        .open("uds", small_circuit("uds", 8), fast_config())
        .unwrap();
    let receipt = client
        .edit(
            "uds",
            vec![EcoEdit::TightenVth {
                net: 1,
                sink: 0,
                vth: 0.12,
            }],
        )
        .unwrap();
    assert_eq!(receipt.edits, 1);
    assert!(client.verify("uds").unwrap());
    let stats = client.close("uds").unwrap();
    assert_eq!(stats.commits, 1);

    server.shutdown();
    assert!(!path.exists(), "socket file must be removed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
