//! Determinism contract of the workload generator: a (spec, seed) pair
//! fully determines the circuit, pinned by committed digests so a cross-
//! process (or cross-machine) drift is caught, not just a within-process
//! one.

use gsino::circuits::generator::{
    circuit_digest, generate, generate_scaled, generate_with, ScaleSpec,
};
use gsino::circuits::io::{parse_workload_str, write_workload};

/// The committed digest of the gated 5k rung — the same workload the
/// scale-matrix bench baseline (`crates/bench/baseline/BENCH_scale.json`)
/// records. Regenerating the baseline is the only legitimate reason for
/// this constant to change.
const SCALE5K_DIGEST: u64 = 0x9049_5c10_0f1b_812f;

#[test]
fn scale5k_digest_is_pinned() {
    let spec = ScaleSpec::by_id("scale5k").expect("ladder rung");
    let wl = generate_scaled(&spec).expect("generates");
    assert_eq!(
        circuit_digest(wl.circuit()),
        SCALE5K_DIGEST,
        "the 5k rung drifted from the committed baseline workload"
    );
}

#[test]
fn same_spec_and_seed_reproduce_bit_identically() {
    let spec = ScaleSpec::rung("mini", 400, 1.0, 0.0);
    let a = generate_scaled(&spec).expect("generates");
    let b = generate_scaled(&spec).expect("generates");
    assert_eq!(a, b, "same (spec, seed) must reproduce the workload");
    assert_eq!(circuit_digest(a.circuit()), circuit_digest(b.circuit()));
}

#[test]
fn distinct_seeds_give_distinct_circuits() {
    let mut a = ScaleSpec::rung("mini", 400, 1.0, 0.0);
    let mut b = a.clone();
    a.seed = 1;
    b.seed = 2;
    let wa = generate_scaled(&a).expect("generates");
    let wb = generate_scaled(&b).expect("generates");
    assert_ne!(
        circuit_digest(wa.circuit()),
        circuit_digest(wb.circuit()),
        "distinct seeds must give distinct workloads"
    );
}

#[test]
fn distinct_rungs_give_distinct_circuits() {
    let a = generate_scaled(&ScaleSpec::rung("a", 300, 1.0, 0.0)).expect("generates");
    let b = generate_scaled(&ScaleSpec::rung("b", 300, 1.2, 0.10)).expect("generates");
    assert_ne!(circuit_digest(a.circuit()), circuit_digest(b.circuit()));
}

#[test]
fn zero_fanout_boost_preserves_the_historical_stream() {
    // `generate` is the historical entry point every committed bench
    // baseline depends on; `generate_with(…, 0.0)` must be the same
    // stream bit for bit.
    let spec = ScaleSpec::rung("mini", 400, 1.0, 0.0).circuit_spec();
    let a = generate(&spec, 2002).expect("generates");
    let b = generate_with(&spec, 2002, 0.0).expect("generates");
    assert_eq!(a, b);
}

#[test]
fn fanout_boost_changes_the_distribution() {
    let spec = ScaleSpec::rung("mini", 400, 1.0, 0.0).circuit_spec();
    let a = generate_with(&spec, 2002, 0.0).expect("generates");
    let b = generate_with(&spec, 2002, 0.2).expect("generates");
    assert_ne!(circuit_digest(&a), circuit_digest(&b));
    let pins = |c: &gsino::grid::Circuit| -> usize { c.nets().iter().map(|n| n.degree()).sum() };
    assert!(
        pins(&b) > pins(&a),
        "a positive fanout boost must raise the total pin count"
    );
}

#[test]
fn digest_survives_the_text_round_trip() {
    let spec = ScaleSpec::rung("mini", 400, 1.0, 0.0);
    let wl = generate_scaled(&spec).expect("generates");
    let mut text = Vec::new();
    write_workload(&wl, &mut text).expect("writes");
    let parsed = parse_workload_str(&String::from_utf8(text).expect("utf-8")).expect("parses");
    assert_eq!(
        circuit_digest(parsed.circuit()),
        circuit_digest(wl.circuit()),
        "the digest is a function of the circuit, not of the encoding"
    );
}
