//! Scheduler invariant stress: many sessions on few pool workers.
//!
//! The worker pool's conformance promises, checked at 64 sessions × 2
//! workers (the sessions-far-outnumber-workers regime the pool exists
//! for; `GSINO_POOL_THREADS` overrides the pool size so CI can sweep a
//! matrix):
//!
//! 1. **Bit-identity** — every retired session equals both its *twin*
//!    (the same circuit + edit sequence driven through a different
//!    session name, so the two interleave arbitrarily on the pool) and a
//!    from-scratch flow on its final configuration.
//! 2. **Pinning** — no session is ever observed on two workers at once
//!    ([`pinning_violations`](gsino::core::service::PoolStats) stays 0).
//! 3. **Clean drain** — after every session closes, no runnable work
//!    remains anywhere in the scheduler (injector and deques empty).

use gsino::core::pipeline::{run_flow_with_artifacts, Approach};
use gsino::grid::{Circuit, Net, Point, Rect};
use gsino::sino::nss::NssModel;
use gsino::{EcoEdit, EcoSession, GsinoConfig, RoutingService, ServiceConfig};

/// Pool size under test: `GSINO_POOL_THREADS` (the CI matrix knob),
/// defaulting to the issue's canonical 2-workers case.
fn pool_threads() -> usize {
    std::env::var("GSINO_POOL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn small_circuit(name: &str, n: u32, salt: u32) -> Circuit {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
    let nets: Vec<Net> = (0..n)
        .map(|i| {
            let k = i + salt;
            let x = 16.0 + (f64::from(k) * 37.0) % 600.0;
            let y = 16.0 + (f64::from(k) * 53.0) % 600.0;
            Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
        })
        .collect();
    Circuit::new(name, die, nets).unwrap()
}

fn fast_config() -> GsinoConfig {
    GsinoConfig::builder()
        .nss_model(NssModel::from_coefficients(
            [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
            0.5,
        ))
        .threads(1)
        .build()
        .unwrap()
}

/// The per-session workload: deterministic in the session's *flavor*, so
/// twin sessions (same flavor, different name) replay identical edits.
fn edits_for(flavor: u32, step: u32) -> Vec<EcoEdit> {
    vec![EcoEdit::TightenVth {
        net: (flavor + step) % 6,
        sink: 0,
        vth: 0.10 + 0.004 * f64::from((flavor + 3 * step) % 7),
    }]
}

fn assert_matches_scratch(name: &str, session: &EcoSession) {
    let (outcome, internals) =
        run_flow_with_artifacts(session.circuit(), session.config(), Approach::Gsino).unwrap();
    assert_eq!(session.routes(), &outcome.routes, "{name}: routes diverged");
    assert_eq!(
        session.budgets(),
        &internals.budgets,
        "{name}: budgets diverged"
    );
    assert_eq!(session.sino(), &internals.sino, "{name}: sino diverged");
}

#[test]
fn sixty_four_sessions_on_a_tiny_pool_hold_every_invariant() {
    const SESSIONS: usize = 64;
    const FLAVORS: u32 = 32; // sessions i and i+32 are twins
    const STEPS: u32 = 2;

    let service = RoutingService::new(ServiceConfig {
        max_sessions: SESSIONS,
        pool_threads: pool_threads(),
        ..ServiceConfig::default()
    });
    assert!(
        service.config().pool_threads < SESSIONS,
        "the point of this test is pool threads < session count"
    );

    // Open everything up front: 64 builds funnel through the few workers.
    let names: Vec<String> = (0..SESSIONS).map(|i| format!("s{i:02}")).collect();
    for (i, name) in names.iter().enumerate() {
        let flavor = i as u32 % FLAVORS;
        service
            .open(name, small_circuit(name, 6, flavor), fast_config())
            .unwrap();
    }

    // Drive every session from its own client thread so submissions
    // interleave arbitrarily across the pool.
    let clients: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let handle = service.handle(name).unwrap();
            let flavor = i as u32 % FLAVORS;
            std::thread::spawn(move || {
                for step in 0..STEPS {
                    loop {
                        match handle.edit(edits_for(flavor, step)) {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => std::thread::yield_now(),
                            Err(other) => panic!("edit failed: {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // Pinning held throughout the storm.
    let stats = service.pool_stats();
    assert_eq!(
        stats.pinning_violations, 0,
        "a session ran on two workers concurrently"
    );
    assert_eq!(stats.pool_threads, pool_threads());

    // Retire everything; every close must succeed with a drained queue.
    let mut retired: Vec<(usize, EcoSession)> = Vec::with_capacity(SESSIONS);
    for (i, name) in names.iter().enumerate() {
        let session = service.close(name).unwrap();
        assert!(!session.in_transaction(), "{name}: torn transaction");
        assert_eq!(
            session.stats().edits_applied,
            u64::from(STEPS),
            "{name}: lost or duplicated edits"
        );
        retired.push((i, session));
    }

    // Clean drain: with every session retired, nothing is runnable —
    // the injector and every worker deque are empty. (Retirement is
    // synchronous in close(), so no settling wait is needed.)
    let stats = service.pool_stats();
    assert_eq!(stats.runnable_sessions, 0, "scheduler left runnable work");
    assert_eq!(stats.pinning_violations, 0);

    // Twin bit-identity: same flavor ⇒ byte-for-byte the same artifacts,
    // regardless of how the two sessions' slices interleaved.
    for f in 0..FLAVORS as usize {
        let (_, a) = &retired[f];
        let (_, b) = &retired[f + FLAVORS as usize];
        assert_eq!(a.routes(), b.routes(), "flavor {f}: twin routes differ");
        assert_eq!(a.budgets(), b.budgets(), "flavor {f}: twin budgets differ");
        assert_eq!(a.sino(), b.sino(), "flavor {f}: twin sino differs");
        assert_eq!(
            a.config().vth_overrides,
            b.config().vth_overrides,
            "flavor {f}: twin overrides differ"
        );
    }

    // From-scratch bit-identity on a deterministic sample (every 8th
    // session) — the full flow is expensive under the debug oracle, and
    // twin identity above already ties every session to a checked one
    // modulo flavor.
    for (i, session) in retired.iter().filter(|(i, _)| i % 8 == 0) {
        assert_matches_scratch(&names[*i], session);
    }

    // The drop joins the (now idle) pool; it must not hang.
    drop(service);
}
