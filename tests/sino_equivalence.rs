//! Equivalence properties of the incremental Phase II solvers against the
//! seed clone-and-reevaluate implementations kept in
//! `gsino_sino::reference`.
//!
//! The [`DeltaEval`]-driven greedy constructor, net-ordering baseline and
//! annealer must be observationally *identical* to the seed solvers —
//! same layouts bit for bit, and therefore the same
//! [`gsino_sino::keff::Evaluation`] values — across random instances,
//! budgets, sensitivity rates and annealing seeds. This is the Phase II
//! counterpart of `router_equivalence.rs`'s `reference::SeedIdRouter`
//! contract.

use gsino_grid::SensitivityModel;
use gsino_sino::anneal::AnnealConfig;
use gsino_sino::delta::DeltaEval;
use gsino_sino::instance::{SegmentSpec, SinoInstance};
use gsino_sino::keff::evaluate;
use gsino_sino::layout::Layout;
use gsino_sino::solver::{SinoSolver, SolverConfig};
use gsino_sino::{greedy, reference};
use proptest::prelude::*;

fn instance(n: usize, rate: f64, kth: f64, seed: u64) -> SinoInstance {
    let segs = (0..n).map(|i| SegmentSpec { net: i as u32, kth }).collect();
    SinoInstance::from_model(segs, &SensitivityModel::new(rate, seed)).expect("valid instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The delta-driven greedy solver returns bit-identical layouts to the
    /// seed greedy solver, and its evaluation matches a from-scratch one.
    #[test]
    fn greedy_matches_reference(
        n in 0usize..16,
        rate_pct in 0u32..=100,
        kth_exp in -3i32..2,
        seed in 0u64..5000,
    ) {
        let inst = instance(n, rate_pct as f64 / 100.0, 10f64.powi(kth_exp), seed);
        let fast = greedy::solve_greedy(&inst);
        let slow = reference::solve_greedy(&inst);
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(evaluate(&inst, &fast), evaluate(&inst, &slow));
    }

    /// The delta-driven net-ordering baseline matches the seed one.
    #[test]
    fn order_only_matches_reference(
        n in 0usize..16,
        rate_pct in 0u32..=100,
        seed in 0u64..5000,
    ) {
        let inst = instance(n, rate_pct as f64 / 100.0, 1.0, seed);
        prop_assert_eq!(greedy::order_only(&inst), reference::order_only(&inst));
    }

    /// The apply/undo annealer consumes the RNG identically to the seed
    /// clone-and-rescore annealer and lands on the same layout.
    #[test]
    fn annealer_matches_reference(
        n in 2usize..12,
        rate_pct in 10u32..=100,
        kth_exp in -2i32..1,
        seed in 0u64..5000,
        iters in 1usize..900,
    ) {
        let inst = instance(n, rate_pct as f64 / 100.0, 10f64.powi(kth_exp), seed);
        let start = reference::solve_greedy(&inst);
        let cfg = AnnealConfig { iters, seed, ..AnnealConfig::default() };
        let fast = gsino_sino::anneal::improve(&inst, start.clone(), &cfg);
        let slow = reference::improve(&inst, start, &cfg);
        prop_assert_eq!(fast, slow);
    }

    /// The full solver facade (greedy + optional anneal + validation)
    /// matches `reference::solve` for both configurations, including when
    /// one `DeltaEval` scratch is reused across consecutive solves.
    #[test]
    fn solver_facade_matches_reference(
        n in 0usize..14,
        rate_pct in 0u32..=100,
        seed in 0u64..5000,
        anneal_iters in 0usize..600,
    ) {
        let inst = instance(n, rate_pct as f64 / 100.0, 0.4, seed);
        // `0` doubles as "no annealing" to cover both solver configs.
        let config = match anneal_iters {
            0 => SolverConfig::default(),
            iters => SolverConfig::with_anneal(iters, seed),
        };
        let slow = reference::solve(&config, &inst).expect("reference solve");
        let mut scratch = DeltaEval::new();
        let fast = SinoSolver::new(config)
            .solve_with(&inst, &mut scratch)
            .expect("incremental solve");
        prop_assert_eq!(&fast, &slow);
        // Scratch reuse: solving again from the dirty scratch must not
        // change the answer.
        let again = SinoSolver::new(config)
            .solve_with(&inst, &mut scratch)
            .expect("incremental solve, reused scratch");
        prop_assert_eq!(&again, &slow);
    }

    /// Random edit sequences on a `DeltaEval` stay bitwise-equal to a
    /// from-scratch `evaluate` at every step (the oracle that underpins
    /// all the equivalences above), including across a mid-sequence
    /// `load` retarget.
    #[test]
    fn delta_eval_matches_scratch_evaluate(
        n in 1usize..10,
        rate_pct in 0u32..=100,
        kth_exp in -2i32..2,
        seed in 0u64..5000,
        ops in prop::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..48),
    ) {
        let inst = instance(n, rate_pct as f64 / 100.0, 10f64.powi(kth_exp), seed);
        let mut delta = DeltaEval::new();
        delta.load(&inst, &Layout::from_order(&(0..n).collect::<Vec<_>>()));
        for (i, (op, x, y)) in ops.into_iter().enumerate() {
            let area = delta.area();
            match op {
                0 => delta.swap(&inst, x % area, y % area),
                1 => delta.relocate(&inst, x % area, y % (area + 1)),
                2 => delta.insert_shield(&inst, x % (area + 1)),
                _ => {
                    delta.remove_shield_at(&inst, x % area);
                }
            }
            let layout = delta.to_layout();
            prop_assert_eq!(delta.evaluation(), evaluate(&inst, &layout), "op {}", i);
        }
    }
}

/// One denser non-property check: a tight-budget, high-sensitivity batch
/// where repair and compaction both do real work — every layout, shield
/// count and coupling vector must agree with the reference solver.
#[test]
fn dense_batch_full_agreement() {
    let mut scratch = DeltaEval::new();
    for seed in 0..24u64 {
        let inst = instance(14, 0.7, 0.15, seed);
        let slow = reference::solve_greedy(&inst);
        let fast = greedy::solve_greedy_with(&inst, &mut scratch);
        assert_eq!(fast, slow, "seed {seed}");
        let eval = evaluate(&inst, &fast);
        assert!(eval.feasible, "seed {seed} infeasible");
        assert_eq!(eval, evaluate(&inst, &slow));
    }
}
