//! Failure injection: malformed inputs must be rejected with typed errors,
//! never panics, and degenerate-but-legal inputs must work.
//!
//! The second half of this suite drives the ECO session's fault-tolerance
//! ladder: planned corruptions of the session's cached state must be
//! *detected* by the sampled oracle and *recovered* by an explicit
//! degraded replay whose result is bit-identical to a from-scratch run —
//! never a panic, never a silently wrong answer.

use gsino::core::cancel::CancelToken;
use gsino::core::pipeline::{run_flow_with_artifacts, run_gsino, Approach, GsinoConfig};
use gsino::core::session::{EcoEdit, EcoSession, FaultKind, FaultPlan, OracleConfig};
use gsino::core::CoreError;
use gsino::grid::{Circuit, CircuitEdit, GridError, Net, Point, Rect, RegionGrid, Technology};
use gsino::lsk::{kth_for_le, LskError, NoiseTable};
use gsino::rlc::{Netlist, RlcError, Waveform};
use gsino::sino::{instance::SegmentSpec, SinoError, SinoInstance};

#[test]
fn circuit_construction_rejects_bad_inputs() {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
    assert!(matches!(
        Circuit::new("x", die, vec![]),
        Err(GridError::EmptyCircuit)
    ));
    assert!(matches!(
        Circuit::new("x", die, vec![Net::new(0, vec![])]),
        Err(GridError::EmptyNet { .. })
    ));
    assert!(matches!(
        Circuit::new("x", die, vec![Net::new(0, vec![Point::new(500.0, 0.0)])]),
        Err(GridError::PinOutsideDie { .. })
    ));
}

#[test]
fn grid_rejects_unusable_tiles() {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
    let tech = Technology::itrs_100nm();
    for tile in [0.0, -4.0, f64::NAN, 1.0] {
        assert!(
            matches!(
                RegionGrid::from_die(die, &tech, tile),
                Err(GridError::BadTile { .. })
            ),
            "tile {tile} must be rejected"
        );
    }
}

#[test]
fn pipeline_rejects_bad_constraints() {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(256.0, 256.0)).unwrap();
    let circuit = Circuit::new(
        "x",
        die,
        vec![Net::two_pin(
            0,
            Point::new(10.0, 10.0),
            Point::new(200.0, 200.0),
        )],
    )
    .unwrap();
    for vth in [0.0, -0.1, 1.05, 2.0, f64::NAN] {
        let config = GsinoConfig {
            vth,
            ..GsinoConfig::default()
        };
        assert!(
            matches!(
                run_gsino(&circuit, &config),
                Err(CoreError::BadConfig { .. })
            ),
            "vth {vth} must be rejected"
        );
    }
    // Non-finite router weights would poison the routers' float
    // comparators; they must be rejected at the config boundary instead.
    for bad in [f64::NAN, f64::INFINITY] {
        let config = GsinoConfig {
            weights: gsino::core::Weights {
                alpha: bad,
                ..Default::default()
            },
            ..GsinoConfig::default()
        };
        assert!(
            matches!(
                run_gsino(&circuit, &config),
                Err(CoreError::BadConfig { .. })
            ),
            "weight {bad} must be rejected"
        );
    }
}

#[test]
fn sino_rejects_bad_budgets_and_matrices() {
    assert!(matches!(
        SinoInstance::new(vec![SegmentSpec { net: 0, kth: 0.0 }], vec![false]),
        Err(SinoError::BadBudget { .. })
    ));
    assert!(matches!(
        SinoInstance::new(vec![SegmentSpec { net: 0, kth: 1.0 }], vec![false; 3]),
        Err(SinoError::MalformedLayout { .. })
    ));
}

#[test]
fn rlc_rejects_nonphysical_elements() {
    let mut nl = Netlist::new(2);
    assert!(matches!(
        nl.resistor(1, 2, -10.0),
        Err(RlcError::BadElementValue { .. })
    ));
    assert!(matches!(
        nl.resistor(1, 5, 10.0),
        Err(RlcError::NodeOutOfRange { .. })
    ));
    let i = nl.inductor(1, 2, 1e-9).unwrap();
    let j = nl.inductor(2, 0, 1e-9).unwrap();
    assert!(matches!(
        nl.mutual(i, j, 2e-9),
        Err(RlcError::NonPassiveMutual { .. })
    ));
    nl.voltage_source(1, 0, Waveform::Dc(1.0)).unwrap();
}

#[test]
fn lsk_budgeting_rejects_out_of_range() {
    let table = NoiseTable::calibrated(&Technology::itrs_100nm());
    assert!(matches!(
        kth_for_le(&table, 0.15, 0.0),
        Err(LskError::BadDistance { .. })
    ));
    assert!(matches!(
        kth_for_le(&table, 5.0, 100.0),
        Err(LskError::BadConstraint { .. })
    ));
}

#[test]
fn degenerate_circuits_still_flow() {
    // Single net, single pin: nothing to route, nothing to violate.
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(256.0, 256.0)).unwrap();
    let circuit =
        Circuit::new("deg", die, vec![Net::new(0, vec![Point::new(10.0, 10.0)])]).unwrap();
    let outcome = run_gsino(&circuit, &GsinoConfig::default()).unwrap();
    assert!(outcome.violations.is_clean());
    assert_eq!(outcome.total_shields, 0);
    assert_eq!(outcome.wirelength.total_um, 0.0);

    // All pins in one region.
    let circuit = Circuit::new(
        "local",
        die,
        vec![Net::new(
            0,
            vec![
                Point::new(1.0, 1.0),
                Point::new(30.0, 20.0),
                Point::new(5.0, 40.0),
            ],
        )],
    )
    .unwrap();
    let outcome = run_gsino(&circuit, &GsinoConfig::default()).unwrap();
    assert!(outcome.violations.is_clean());
    assert!(outcome.wirelength.total_um > 0.0, "local nets report HPWL");
}

#[test]
fn errors_format_and_chain() {
    // Every error type implements Display + Error with sources.
    use std::error::Error;
    let e = CoreError::BadConfig {
        reason: "demo".into(),
    };
    assert!(e.to_string().contains("demo"));
    let e = CoreError::Lsk(LskError::BadConstraint { vth: 9.0 });
    assert!(e.source().is_some());
    let e = RlcError::Numeric(gsino::numeric::NumericError::EmptyInput { op: "x" });
    assert!(e.source().is_some());
}

// ---------------------------------------------------------------------------
// ECO session fault tolerance
// ---------------------------------------------------------------------------

use gsino::sino::NssModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn session_circuit(n: u32) -> Circuit {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
    let nets: Vec<Net> = (0..n)
        .map(|i| {
            let x = 16.0 + (i as f64 * 37.0) % 600.0;
            let y = 16.0 + (i as f64 * 53.0) % 600.0;
            Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
        })
        .collect();
    Circuit::new("session", die, nets).unwrap()
}

fn session_config() -> GsinoConfig {
    GsinoConfig {
        // A fixed NSS model keeps the shield-rate fit out of the hot loop;
        // the session re-derives everything else from scratch regardless.
        nss_model: Some(NssModel::from_coefficients(
            [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
            0.5,
        )),
        threads: 1,
        ..GsinoConfig::default()
    }
}

/// The session's live artifacts must be bit-identical to a from-scratch
/// GSINO run on its current (edited) circuit and configuration.
fn assert_session_matches_scratch(session: &EcoSession) {
    let (outcome, internals) =
        run_flow_with_artifacts(session.circuit(), session.config(), Approach::Gsino).unwrap();
    assert_eq!(session.routes(), &outcome.routes, "routes diverged");
    assert_eq!(session.budgets(), &internals.budgets, "budgets diverged");
    assert_eq!(session.sino(), &internals.sino, "sino diverged");
}

/// Injects one planned corruption, then commits an ordinary edit: the
/// oracle must flag the divergence, quarantine the cached state, and
/// recover through an explicit degraded replay whose result is
/// bit-identical to a from-scratch run on the edited circuit.
fn fault_is_detected_and_recovered(kind: FaultKind) {
    let circuit = session_circuit(16);
    let mut session =
        EcoSession::with_oracle(&circuit, &session_config(), OracleConfig::full()).unwrap();
    session.inject_fault(&FaultPlan::new(kind)).unwrap();

    session.begin().unwrap();
    session
        .apply(EcoEdit::TightenVth {
            net: 2,
            sink: 0,
            vth: 0.11,
        })
        .unwrap();
    session.commit().unwrap();

    let stats = *session.stats();
    assert!(
        stats.divergences >= 1,
        "{kind:?}: oracle missed the corruption"
    );
    assert!(
        stats.degraded_replays >= 1,
        "{kind:?}: divergence must recover via degraded replay"
    );
    assert!(
        session.last_divergence().is_some(),
        "{kind:?}: divergence reason must be recorded"
    );
    assert_session_matches_scratch(&session);
}

#[test]
fn session_poisoned_keff_is_detected_and_recovered() {
    fault_is_detected_and_recovered(FaultKind::PoisonKeff);
}

#[test]
fn session_stale_route_is_detected_and_recovered() {
    fault_is_detected_and_recovered(FaultKind::StaleRoute);
}

#[test]
fn session_corrupt_budget_is_detected_and_recovered() {
    fault_is_detected_and_recovered(FaultKind::CorruptBudget);
}

#[test]
fn session_fault_plan_rejects_stale_targets() {
    let circuit = session_circuit(8);
    let mut session = EcoSession::new(&circuit, &session_config()).unwrap();
    let plan = FaultPlan {
        net: Some(4040),
        ..FaultPlan::new(FaultKind::StaleRoute)
    };
    assert!(matches!(
        session.inject_fault(&plan),
        Err(CoreError::UnknownId { kind: "net", .. })
    ));
    // The rejected plan must not have touched anything.
    assert!(session.verify_now().unwrap());
    assert_eq!(session.stats().divergences, 0);
}

#[test]
fn session_verify_now_flags_and_heals_corruption() {
    let circuit = session_circuit(12);
    let mut session =
        EcoSession::with_oracle(&circuit, &session_config(), OracleConfig::full()).unwrap();
    assert!(session.verify_now().unwrap(), "fresh session must verify");

    session
        .inject_fault(&FaultPlan::new(FaultKind::PoisonKeff))
        .unwrap();
    assert!(
        !session.verify_now().unwrap(),
        "corrupted coupling must be flagged"
    );
    // verify_now degrades on divergence, so the very next check is clean.
    assert!(session.verify_now().unwrap(), "degraded replay must heal");
    assert_eq!(session.stats().degraded_replays, 1);
    assert_session_matches_scratch(&session);
}

#[test]
fn session_canceled_commit_restores_pre_edit_state_bitwise() {
    let circuit = session_circuit(12);
    let mut session = EcoSession::new(&circuit, &session_config()).unwrap();
    let routes_before = session.routes().clone();
    let budgets_before = session.budgets().clone();
    let sino_before = session.sino().clone();

    let new_net = Net::two_pin(77, Point::new(20.0, 600.0), Point::new(600.0, 30.0));
    session.begin().unwrap();
    session
        .apply(EcoEdit::Circuit(CircuitEdit::AddNet {
            net: new_net.clone(),
        }))
        .unwrap();
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = session.commit_with(&cancel).unwrap_err();
    assert!(matches!(err, CoreError::Canceled { .. }), "got {err}");

    // Bitwise rollback: the aborted commit left no trace.
    assert!(!session.in_transaction());
    assert!(session.circuit().net(77).is_none());
    assert_eq!(session.routes(), &routes_before);
    assert_eq!(session.budgets(), &budgets_before);
    assert_eq!(session.sino(), &sino_before);
    assert_eq!(session.stats().divergences, 0);

    // The session stays usable: the same edit commits cleanly afterwards.
    session.begin().unwrap();
    session
        .apply(EcoEdit::Circuit(CircuitEdit::AddNet { net: new_net }))
        .unwrap();
    session.commit().unwrap();
    assert!(session.circuit().net(77).is_some());
    assert_session_matches_scratch(&session);
}

/// The acceptance workload: 200 random edits across many transactions
/// with zero injected faults must end bit-identical to from-scratch with
/// zero degraded replays — the incremental replay path alone carries the
/// whole session.
#[test]
fn session_200_random_edits_zero_faults_is_bit_identical() {
    let circuit = session_circuit(12);
    let mut session = EcoSession::new(&circuit, &session_config()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x200_ED17);
    let mut next_id = 100u32;
    let mut edits = 0u64;

    while edits < 200 {
        session.begin().unwrap();
        let batch = rng.gen_range(1..=8u64).min(200 - edits);
        // Track ids live *within* the open transaction, so edits always
        // target nets that exist in the working copy.
        let mut live: Vec<u32> = session.circuit().nets().iter().map(|n| n.id()).collect();
        for _ in 0..batch {
            let roll = rng.gen_range(0..100u32);
            let edit = if roll < 60 {
                let net = live[rng.gen_range(0..live.len())];
                EcoEdit::TightenVth {
                    net,
                    sink: 0,
                    vth: 0.08 + 0.06 * rng.gen::<f64>(),
                }
            } else if roll < 75 {
                let net = live[rng.gen_range(0..live.len())];
                EcoEdit::RelaxVth { net, sink: 0 }
            } else if roll < 85 {
                let id = next_id;
                next_id += 1;
                live.push(id);
                let x = 16.0 + rng.gen::<f64>() * 590.0;
                let y = 16.0 + rng.gen::<f64>() * 590.0;
                EcoEdit::Circuit(CircuitEdit::AddNet {
                    net: Net::two_pin(id, Point::new(x, y), Point::new(620.0 - x, 620.0 - y)),
                })
            } else if roll < 92 && live.len() > 4 {
                let i = rng.gen_range(0..live.len());
                let net = live.swap_remove(i);
                EcoEdit::Circuit(CircuitEdit::RemoveNet { net })
            } else {
                let net = live[rng.gen_range(0..live.len())];
                let x = 16.0 + rng.gen::<f64>() * 590.0;
                let y = 16.0 + rng.gen::<f64>() * 590.0;
                EcoEdit::Circuit(CircuitEdit::RePin {
                    net,
                    pins: vec![Point::new(x, y), Point::new(620.0 - x, 620.0 - y)],
                })
            };
            session.apply(edit).unwrap();
            edits += 1;
        }
        session.commit().unwrap();
    }

    let stats = *session.stats();
    assert_eq!(stats.edits_applied, 200);
    assert_eq!(stats.divergences, 0, "{:?}", session.last_divergence());
    assert_eq!(stats.degraded_replays, 0);
    assert_session_matches_scratch(&session);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random edit sequences with interleaved cache corruption: the
    /// session must never panic, every injected fault must surface as an
    /// explicit degraded replay (no silent divergence), and the end state
    /// must be bit-identical to a from-scratch run on the edited inputs.
    #[test]
    fn session_random_edits_with_faults_never_diverge_silently(
        seed in 0u64..1_000_000,
        faults in prop::collection::vec(0..3usize, 1..3),
    ) {
        let kinds = [FaultKind::PoisonKeff, FaultKind::StaleRoute, FaultKind::CorruptBudget];
        let circuit = session_circuit(10);
        let mut session =
            EcoSession::with_oracle(&circuit, &session_config(), OracleConfig::full()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);

        for &f in &faults {
            // An ordinary edit first, then corruption, then another edit
            // whose commit forces the oracle to look at the cached state.
            session.begin().unwrap();
            let net = rng.gen_range(0..10u32);
            let vth = 0.09 + 0.05 * rng.gen::<f64>();
            session.apply(EcoEdit::TightenVth { net, sink: 0, vth }).unwrap();
            session.commit().unwrap();

            session.inject_fault(&FaultPlan::new(kinds[f])).unwrap();

            session.begin().unwrap();
            let net = rng.gen_range(0..10u32);
            session.apply(EcoEdit::RelaxVth { net, sink: 0 }).unwrap();
            session.commit().unwrap();
        }

        let stats = *session.stats();
        prop_assert!(
            stats.degraded_replays >= faults.len() as u64,
            "every fault must surface as an explicit degraded replay \
             (injected {}, degraded {})",
            faults.len(),
            stats.degraded_replays
        );
        prop_assert!(session.last_divergence().is_some());

        let (outcome, internals) =
            run_flow_with_artifacts(session.circuit(), session.config(), Approach::Gsino).unwrap();
        prop_assert_eq!(session.routes(), &outcome.routes);
        prop_assert_eq!(session.budgets(), &internals.budgets);
        prop_assert_eq!(session.sino(), &internals.sino);
    }
}
