//! Failure injection: malformed inputs must be rejected with typed errors,
//! never panics, and degenerate-but-legal inputs must work.

use gsino::core::pipeline::{run_gsino, GsinoConfig};
use gsino::core::CoreError;
use gsino::grid::{Circuit, GridError, Net, Point, Rect, RegionGrid, Technology};
use gsino::lsk::{kth_for_le, LskError, NoiseTable};
use gsino::rlc::{Netlist, RlcError, Waveform};
use gsino::sino::{instance::SegmentSpec, SinoError, SinoInstance};

#[test]
fn circuit_construction_rejects_bad_inputs() {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
    assert!(matches!(
        Circuit::new("x", die, vec![]),
        Err(GridError::EmptyCircuit)
    ));
    assert!(matches!(
        Circuit::new("x", die, vec![Net::new(0, vec![])]),
        Err(GridError::EmptyNet { .. })
    ));
    assert!(matches!(
        Circuit::new("x", die, vec![Net::new(0, vec![Point::new(500.0, 0.0)])]),
        Err(GridError::PinOutsideDie { .. })
    ));
}

#[test]
fn grid_rejects_unusable_tiles() {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
    let tech = Technology::itrs_100nm();
    for tile in [0.0, -4.0, f64::NAN, 1.0] {
        assert!(
            matches!(
                RegionGrid::from_die(die, &tech, tile),
                Err(GridError::BadTile { .. })
            ),
            "tile {tile} must be rejected"
        );
    }
}

#[test]
fn pipeline_rejects_bad_constraints() {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(256.0, 256.0)).unwrap();
    let circuit = Circuit::new(
        "x",
        die,
        vec![Net::two_pin(
            0,
            Point::new(10.0, 10.0),
            Point::new(200.0, 200.0),
        )],
    )
    .unwrap();
    for vth in [0.0, -0.1, 1.05, 2.0, f64::NAN] {
        let config = GsinoConfig {
            vth,
            ..GsinoConfig::default()
        };
        assert!(
            matches!(
                run_gsino(&circuit, &config),
                Err(CoreError::BadConfig { .. })
            ),
            "vth {vth} must be rejected"
        );
    }
}

#[test]
fn sino_rejects_bad_budgets_and_matrices() {
    assert!(matches!(
        SinoInstance::new(vec![SegmentSpec { net: 0, kth: 0.0 }], vec![false]),
        Err(SinoError::BadBudget { .. })
    ));
    assert!(matches!(
        SinoInstance::new(vec![SegmentSpec { net: 0, kth: 1.0 }], vec![false; 3]),
        Err(SinoError::MalformedLayout { .. })
    ));
}

#[test]
fn rlc_rejects_nonphysical_elements() {
    let mut nl = Netlist::new(2);
    assert!(matches!(
        nl.resistor(1, 2, -10.0),
        Err(RlcError::BadElementValue { .. })
    ));
    assert!(matches!(
        nl.resistor(1, 5, 10.0),
        Err(RlcError::NodeOutOfRange { .. })
    ));
    let i = nl.inductor(1, 2, 1e-9).unwrap();
    let j = nl.inductor(2, 0, 1e-9).unwrap();
    assert!(matches!(
        nl.mutual(i, j, 2e-9),
        Err(RlcError::NonPassiveMutual { .. })
    ));
    nl.voltage_source(1, 0, Waveform::Dc(1.0)).unwrap();
}

#[test]
fn lsk_budgeting_rejects_out_of_range() {
    let table = NoiseTable::calibrated(&Technology::itrs_100nm());
    assert!(matches!(
        kth_for_le(&table, 0.15, 0.0),
        Err(LskError::BadDistance { .. })
    ));
    assert!(matches!(
        kth_for_le(&table, 5.0, 100.0),
        Err(LskError::BadConstraint { .. })
    ));
}

#[test]
fn degenerate_circuits_still_flow() {
    // Single net, single pin: nothing to route, nothing to violate.
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(256.0, 256.0)).unwrap();
    let circuit =
        Circuit::new("deg", die, vec![Net::new(0, vec![Point::new(10.0, 10.0)])]).unwrap();
    let outcome = run_gsino(&circuit, &GsinoConfig::default()).unwrap();
    assert!(outcome.violations.is_clean());
    assert_eq!(outcome.total_shields, 0);
    assert_eq!(outcome.wirelength.total_um, 0.0);

    // All pins in one region.
    let circuit = Circuit::new(
        "local",
        die,
        vec![Net::new(
            0,
            vec![
                Point::new(1.0, 1.0),
                Point::new(30.0, 20.0),
                Point::new(5.0, 40.0),
            ],
        )],
    )
    .unwrap();
    let outcome = run_gsino(&circuit, &GsinoConfig::default()).unwrap();
    assert!(outcome.violations.is_clean());
    assert!(outcome.wirelength.total_um > 0.0, "local nets report HPWL");
}

#[test]
fn errors_format_and_chain() {
    // Every error type implements Display + Error with sources.
    use std::error::Error;
    let e = CoreError::BadConfig {
        reason: "demo".into(),
    };
    assert!(e.to_string().contains("demo"));
    let e = CoreError::Lsk(LskError::BadConstraint { vth: 9.0 });
    assert!(e.source().is_some());
    let e = RlcError::Numeric(gsino::numeric::NumericError::EmptyInput { op: "x" });
    assert!(e.source().is_some());
}
