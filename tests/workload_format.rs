//! Conformance suite for the text workload format
//! (`crates/circuits/src/io.rs`, grammar in `crates/circuits/README.md`):
//! the committed golden fixture parses to the expected structure, every
//! documented error class surfaces as a typed [`ParseError`] with the
//! right line number (never a panic), and `parse ∘ write` is the
//! identity — both on the fixture's canonical form and on
//! property-generated workloads.

use gsino::circuits::generator::{generate_scaled, ScaleSpec};
use gsino::circuits::io::{parse_workload_str, write_workload, ParseError, Workload, MAX_NET_PINS};
use gsino::grid::{GridError, Net, Point, Technology};
use proptest::prelude::*;

fn fixture() -> &'static str {
    include_str!("fixtures/mini.workload")
}

// ---------------------------------------------------------------------
// Golden fixture
// ---------------------------------------------------------------------

#[test]
fn golden_fixture_parses_to_expected_structure() {
    let wl = parse_workload_str(fixture()).expect("fixture parses");
    assert_eq!(wl.name(), "mini");
    assert_eq!((wl.nx(), wl.ny()), (4, 3));
    assert_eq!((wl.hc(), wl.vc()), (12, 16));
    assert_eq!((wl.tile_w(), wl.tile_h()), (64.0, 64.0));
    let circuit = wl.circuit();
    assert_eq!(circuit.num_nets(), 3);
    assert_eq!(circuit.die().width(), 256.0);
    assert_eq!(circuit.die().height(), 192.0);
    let ids: Vec<u32> = circuit.nets().iter().map(|n| n.id()).collect();
    assert_eq!(ids, vec![0, 1, 7], "ids need not be contiguous");
    let degrees: Vec<usize> = circuit.nets().iter().map(|n| n.degree()).collect();
    assert_eq!(degrees, vec![2, 3, 2]);
    assert_eq!(circuit.nets()[2].pins()[0], Point::new(64.5, 100.25));
}

#[test]
fn golden_fixture_round_trips_through_canonical_form() {
    let wl = parse_workload_str(fixture()).expect("fixture parses");
    let mut text = Vec::new();
    write_workload(&wl, &mut text).expect("writes");
    let text = String::from_utf8(text).expect("utf-8");
    let again = parse_workload_str(&text).expect("canonical form parses");
    assert_eq!(again, wl, "parse ∘ write must be the identity");
}

#[test]
fn fixture_grid_constructs() {
    let wl = parse_workload_str(fixture()).expect("fixture parses");
    let grid = wl.grid(&Technology::itrs_100nm()).expect("grid builds");
    assert_eq!(grid.num_regions(), 12);
}

// ---------------------------------------------------------------------
// Typed errors, with line numbers
// ---------------------------------------------------------------------

const HEADER: &str = "name t\ngrid 4 3\nvertical capacity 16\nhorizontal capacity 16\ntile 64 64\n";

#[test]
fn bad_pin_count_is_a_typed_error() {
    // Declares 3 pins but the net record only carries 2 before the next
    // directive-shaped line (EOF here).
    let text = format!("{HEADER}num net 1\nnet a 0 3\n  32 32\n  64 64\n");
    match parse_workload_str(&text) {
        Err(ParseError::Truncated { line, .. }) => assert_eq!(line, 9),
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn truncated_net_list_is_a_typed_error() {
    // num net promises 2 nets, file ends after 1.
    let text = format!("{HEADER}num net 2\nnet a 0 2\n  32 32\n  64 64\n");
    match parse_workload_str(&text) {
        Err(ParseError::Truncated { line, .. }) => assert_eq!(line, 9),
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn oversize_grid_is_a_typed_error() {
    let text = "grid 100000 100000\nnum net 1\nnet a 0 1\n  1 1\n";
    match parse_workload_str(text) {
        Err(ParseError::TooLarge {
            line, what, limit, ..
        }) => {
            assert_eq!(line, 1);
            assert_eq!(what, "regions");
            assert_eq!(limit, u64::from(u32::MAX));
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn oversize_pin_count_is_a_typed_error() {
    let text = format!("{HEADER}num net 1\nnet a 0 {}\n", MAX_NET_PINS + 1);
    match parse_workload_str(&text) {
        Err(ParseError::TooLarge { line, what, .. }) => {
            assert_eq!(line, 7);
            assert_eq!(what, "pins");
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn duplicate_net_id_is_a_typed_error() {
    let text = format!("{HEADER}num net 2\nnet a 5 1\n  1 1\nnet b 5 1\n  2 2\n");
    match parse_workload_str(&text) {
        Err(ParseError::Syntax { line, message }) => {
            assert_eq!(line, 9);
            assert!(message.contains("duplicate"), "message: {message}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn bad_number_is_a_typed_error() {
    let text = format!("{HEADER}num net 1\nnet a 0 two\n");
    match parse_workload_str(&text) {
        Err(ParseError::BadNumber { line, token }) => {
            assert_eq!(line, 7);
            assert_eq!(token, "two");
        }
        other => panic!("expected BadNumber, got {other:?}"),
    }
}

#[test]
fn non_finite_coordinate_is_a_typed_error() {
    let text = format!("{HEADER}num net 1\nnet a 0 1\n  NaN 32\n");
    assert!(matches!(
        parse_workload_str(&text),
        Err(ParseError::BadNumber { line: 8, .. })
    ));
}

#[test]
fn pin_outside_die_is_a_typed_error_at_the_pin_line() {
    let text = format!("{HEADER}num net 1\nnet a 0 1\n  9999 32\n");
    match parse_workload_str(&text) {
        Err(ParseError::Grid { line, source }) => {
            assert_eq!(line, 8);
            assert!(matches!(source, GridError::PinOutsideDie { .. }));
        }
        other => panic!("expected Grid(PinOutsideDie), got {other:?}"),
    }
}

#[test]
fn zero_pin_net_is_a_typed_error() {
    let text = format!("{HEADER}num net 1\nnet a 0 0\n");
    assert!(matches!(
        parse_workload_str(&text),
        Err(ParseError::Grid {
            source: GridError::EmptyNet { .. },
            ..
        })
    ));
}

#[test]
fn trailing_content_is_a_typed_error() {
    let text = format!("{HEADER}num net 1\nnet a 0 1\n  1 1\nextra stuff\n");
    assert!(matches!(
        parse_workload_str(&text),
        Err(ParseError::Syntax { line: 9, .. })
    ));
}

#[test]
fn missing_directive_is_a_typed_error() {
    // No `grid` before `num net`.
    let text = "name t\nnum net 1\nnet a 0 1\n  1 1\n";
    match parse_workload_str(text) {
        Err(ParseError::Syntax { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("grid"), "message: {message}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn empty_input_is_a_typed_error() {
    assert!(matches!(
        parse_workload_str(""),
        Err(ParseError::Truncated { .. })
    ));
    assert!(matches!(
        parse_workload_str("# only comments\n\n"),
        Err(ParseError::Truncated { .. })
    ));
}

#[test]
fn errors_render_with_line_numbers() {
    let err = parse_workload_str("grid 0 4\n").expect_err("zero dim rejected");
    let msg = err.to_string();
    assert!(msg.contains("line 1"), "message: {msg}");
}

// ---------------------------------------------------------------------
// Never-panic fuzz legs (mirrors tests/wire_protocol.rs)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded) never panic the parser.
    #[test]
    fn parser_never_panics_on_random_bytes(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_workload_str(&text);
    }

    /// Random streams of grammar-shaped tokens never panic the parser.
    #[test]
    fn parser_never_panics_on_random_tokens(
        words in prop::collection::vec(0usize..17, 1..64),
        newlines in prop::collection::vec(0u8..2, 1..64),
    ) {
        const VOCAB: [&str; 17] = [
            "name", "grid", "vertical", "horizontal", "capacity", "tile",
            "num", "net", "0", "1", "4", "64", "-3", "1e300", "NaN", "#", "x",
        ];
        let mut text = String::new();
        for (i, &w) in words.iter().enumerate() {
            text.push_str(VOCAB[w]);
            text.push(if newlines.get(i).copied().unwrap_or(0) == 1 { '\n' } else { ' ' });
        }
        let _ = parse_workload_str(&text);
    }

    /// parse ∘ write is the identity on arbitrary in-range workloads.
    #[test]
    fn write_then_parse_is_identity(
        nx in 1u32..12,
        ny in 1u32..12,
        caps in (1u32..64, 1u32..64),
        pins in prop::collection::vec(
            prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..5),
            1..12,
        ),
    ) {
        let (hc, vc) = caps;
        let (tw, th) = (64.0, 32.0);
        let (die_w, die_h) = (f64::from(nx) * tw, f64::from(ny) * th);
        let nets: Vec<Net> = pins
            .iter()
            .enumerate()
            .map(|(i, ps)| {
                Net::new(
                    i as u32,
                    ps.iter().map(|&(fx, fy)| Point::new(fx * die_w, fy * die_h)).collect(),
                )
            })
            .collect();
        let wl = Workload::new("prop", nx, ny, hc, vc, tw, th, nets).expect("workload");
        let mut text = Vec::new();
        write_workload(&wl, &mut text).expect("writes");
        let parsed = parse_workload_str(&String::from_utf8(text).expect("utf-8"))
            .expect("written form parses");
        prop_assert_eq!(parsed, wl);
    }
}

// ---------------------------------------------------------------------
// Generator output uses the same format
// ---------------------------------------------------------------------

#[test]
fn generated_rung_round_trips() {
    let spec = ScaleSpec::rung("mini500", 500, 1.0, 0.0);
    let wl = generate_scaled(&spec).expect("mini rung generates");
    let mut text = Vec::new();
    write_workload(&wl, &mut text).expect("writes");
    let parsed = parse_workload_str(&String::from_utf8(text).expect("utf-8")).expect("parses");
    assert_eq!(parsed, wl);
}
