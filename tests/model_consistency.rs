//! Cross-crate consistency: the LSK bookkeeping used by the flows must
//! agree with the models computed directly from the region solutions, and
//! the modelled physics must rank like the simulator.

use gsino::core::budget::{uniform_budgets, LengthModel};
use gsino::core::phase2::{solve_regions, RegionMode};
use gsino::core::router::{route_all, ShieldTerm, Weights};
use gsino::core::violations::sink_lsk;
use gsino::grid::{Circuit, Dir, Net, Point, Rect, RegionGrid, SensitivityModel, Technology};
use gsino::lsk::{lsk_value, NoiseTable};
use gsino::sino::evaluate;
use gsino::sino::solver::SolverConfig;

fn bus(n: u32, len: f64) -> (Circuit, RegionGrid) {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(len.max(512.0), 512.0)).unwrap();
    let nets: Vec<Net> = (0..n)
        .map(|i| {
            Net::two_pin(
                i,
                Point::new(8.0, 256.0 + i as f64),
                Point::new(len - 8.0, 256.0 + i as f64),
            )
        })
        .collect();
    let circuit = Circuit::new("bus", die, nets).unwrap();
    let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).unwrap();
    (circuit, grid)
}

#[test]
fn sink_lsk_matches_manual_accumulation() {
    let (circuit, grid) = bus(8, 1536.0);
    let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
    let table = NoiseTable::calibrated(&Technology::itrs_100nm());
    let budgets = uniform_budgets(
        &circuit,
        &grid,
        &routes,
        &table,
        0.15,
        LengthModel::Manhattan,
    )
    .unwrap();
    let sens = SensitivityModel::new(0.5, 5);
    let sino = solve_regions(
        &grid,
        &routes,
        &budgets,
        &sens,
        SolverConfig::default(),
        RegionMode::OrderOnly,
        1,
    )
    .unwrap();
    for net in circuit.nets() {
        let route = routes.get(net.id()).unwrap();
        let fast = sink_lsk(&grid, route, &sino, net, 0);
        // Manual re-accumulation over the same path.
        let root = grid.region_of(net.source());
        let sink_region = grid.region_of(net.sinks()[0]);
        let path = route.path(root, sink_region).unwrap();
        let manual = lsk_value(path.iter().flat_map(|&r| {
            let (lh, lv) = route.length_in_region(&grid, r);
            [
                (lh, sino.k_of(net.id(), r, Dir::H).unwrap_or(0.0)),
                (lv, sino.k_of(net.id(), r, Dir::V).unwrap_or(0.0)),
            ]
        }));
        assert!((fast - manual).abs() < 1e-9, "net {}", net.id());
    }
}

#[test]
fn region_k_values_match_layout_evaluation() {
    let (circuit, grid) = bus(10, 1024.0);
    let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
    let table = NoiseTable::calibrated(&Technology::itrs_100nm());
    let budgets = uniform_budgets(
        &circuit,
        &grid,
        &routes,
        &table,
        0.15,
        LengthModel::RoutedPath,
    )
    .unwrap();
    let sens = SensitivityModel::new(0.5, 5);
    let sino = solve_regions(
        &grid,
        &routes,
        &budgets,
        &sens,
        SolverConfig::default(),
        RegionMode::Sino,
        1,
    )
    .unwrap();
    for (r, d) in sino.keys() {
        let sol = sino.solution(r, d).unwrap();
        let eval = evaluate(&sol.instance, &sol.layout);
        assert_eq!(sol.k, eval.k, "cached K differs at region {r} {d:?}");
        assert!(eval.feasible, "phase II must satisfy budgets at {r} {d:?}");
    }
}

#[test]
fn longer_nets_accumulate_more_lsk() {
    let table = NoiseTable::calibrated(&Technology::itrs_100nm());
    let mut last = 0.0;
    for len in [512.0, 1024.0, 2048.0] {
        let (circuit, grid) = bus(6, len);
        let (routes, _) = route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).unwrap();
        let budgets = uniform_budgets(
            &circuit,
            &grid,
            &routes,
            &table,
            0.15,
            LengthModel::Manhattan,
        )
        .unwrap();
        let sens = SensitivityModel::new(1.0, 5);
        let sino = solve_regions(
            &grid,
            &routes,
            &budgets,
            &sens,
            SolverConfig::default(),
            RegionMode::OrderOnly,
            1,
        )
        .unwrap();
        let net = circuit.net(2).unwrap();
        let lsk = sink_lsk(&grid, routes.get(2).unwrap(), &sino, net, 0);
        assert!(lsk > last, "LSK must grow with length: {lsk} after {last}");
        last = lsk;
    }
}

#[test]
fn keff_ranking_agrees_with_simulator() {
    // The fidelity property (paper §2.2): higher modelled K must mean
    // higher simulated noise, at fixed length. Three layouts of increasing
    // separation around the victim.
    use gsino::lsk::victim_block_spec;
    use gsino::rlc::peak_noise;
    use gsino::sino::instance::SegmentSpec;
    use gsino::sino::{Layout, SinoInstance};

    let tech = Technology::itrs_100nm();
    let segs: Vec<SegmentSpec> = (0..5).map(|i| SegmentSpec { net: i, kth: 1e9 }).collect();
    let inst = SinoInstance::from_model(segs, &SensitivityModel::new(1.0, 1)).unwrap();
    // Victim is segment 0; neighbours pack closer and closer.
    let layouts = [
        Layout::from_order(&[1, 0, 2, 3, 4]), // victim sandwiched
        Layout::from_order(&[0, 1, 2, 3, 4]), // victim at the edge
        {
            let mut l = Layout::from_order(&[0, 1, 2, 3, 4]);
            l.insert_shield(1); // victim isolated by a shield
            l
        },
    ];
    let mut pairs = Vec::new();
    for layout in &layouts {
        let k = gsino::sino::keff::coupling(&inst, layout)[0];
        let noise = match victim_block_spec(&inst, layout, 0, 1500.0, &tech).unwrap() {
            Some(spec) => peak_noise(&spec).unwrap(),
            None => 0.0,
        };
        pairs.push((k, noise));
    }
    // K ordering: sandwiched > edge > shielded.
    assert!(pairs[0].0 > pairs[1].0 && pairs[1].0 > pairs[2].0);
    // Noise must follow the same order.
    assert!(
        pairs[0].1 > pairs[1].1 && pairs[1].1 > pairs[2].1,
        "simulated noise does not follow Keff ranking: {pairs:?}"
    );
}
