//! Equivalence properties of the flat-array routing core against the seed
//! implementation kept in `gsino_core::router::reference`.
//!
//! The flat `SearchScratch` A* (epoch-stamped arrays, monotone bucket
//! heap, closed-set skips) and the worklist-based tree assembly must be
//! observationally *identical* to the seed `HashMap`/`BinaryHeap` router —
//! same route sets byte for byte — on generator circuits across seeds, as
//! must the speculative parallel Phase I for any thread count.

use gsino_circuits::generator::generate;
use gsino_circuits::spec::CircuitSpec;
use gsino_core::router::reference::SeedAstarRouter;
use gsino_core::router::{AstarRouter, ShieldTerm, Weights};
use gsino_grid::region::RegionGrid;
use gsino_grid::tech::Technology;
use proptest::prelude::*;

fn routers_setup(seed: u64, scale: f64) -> (gsino_grid::net::Circuit, RegionGrid) {
    let spec = CircuitSpec::ibm01().scaled(scale);
    let circuit = generate(&spec, seed).expect("generator circuits are valid");
    let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).expect("valid grid");
    (circuit, grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The flat-array A* returns byte-identical route sets to the seed
    /// HashMap implementation on seeded random circuits.
    #[test]
    fn flat_astar_matches_seed_router(seed in 0u64..5000) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let weights = Weights::default();
        let flat = AstarRouter::new(&grid, weights, ShieldTerm::None);
        let reference = SeedAstarRouter::new(&grid, weights, ShieldTerm::None);
        let (flat_routes, _) = flat.route(&circuit).expect("flat routes");
        let seed_routes = reference.route(&circuit).expect("reference routes");
        prop_assert_eq!(flat_routes, seed_routes);
    }

    /// Two consecutive `route` calls on one reused scratch are
    /// deterministic and equal to a fresh-scratch run.
    #[test]
    fn reused_scratch_is_deterministic(seed in 0u64..5000) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let mut scratch = router.make_scratch();
        let (first, _) = router.route_with_scratch(&circuit, &mut scratch).expect("routes");
        let (second, _) = router.route_with_scratch(&circuit, &mut scratch).expect("routes");
        let (fresh, _) = router.route(&circuit).expect("routes");
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &fresh);
    }

    /// Speculative parallel Phase I commits in sequential order and is
    /// bit-for-bit identical to the sequential router.
    #[test]
    fn parallel_astar_matches_sequential(seed in 0u64..5000, threads in 2usize..9) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let (seq, _) = router.route(&circuit).expect("sequential routes");
        let (par, _) = router.route_with_threads(&circuit, threads).expect("parallel routes");
        prop_assert_eq!(seq, par);
    }
}

/// One denser non-property check: a mid-size circuit where congestion
/// pressure forces detours, wirelength and trees must still agree across
/// the seed router, the flat router, and the parallel flat router.
#[test]
fn dense_circuit_full_agreement() {
    let (circuit, grid) = routers_setup(2002, 0.06);
    let weights = Weights::default();
    let flat = AstarRouter::new(&grid, weights, ShieldTerm::None);
    let (seq, stats) = flat.route(&circuit).expect("flat");
    let seed_routes = SeedAstarRouter::new(&grid, weights, ShieldTerm::None)
        .route(&circuit)
        .expect("reference");
    assert_eq!(seq, seed_routes);
    assert_eq!(
        seq.total_wirelength(&grid),
        seed_routes.total_wirelength(&grid)
    );
    let (par, par_stats) = flat.route_with_threads(&circuit, 4).expect("parallel");
    assert_eq!(seq, par);
    assert_eq!(stats.connections, par_stats.connections);
}
