//! Equivalence properties of the flat-array routing core against the seed
//! implementations kept in `gsino_core::router::reference`.
//!
//! The flat `SearchScratch` A* (epoch-stamped arrays, monotone bucket
//! heap, closed-set skips) and the worklist-based tree assembly must be
//! observationally *identical* to the seed `HashMap`/`BinaryHeap` router —
//! same route sets byte for byte — on generator circuits across seeds, as
//! must the speculative parallel Phase I for any thread count.
//!
//! The same holds for the ID path: the incremental-connectivity ID router
//! (`router::connectivity`) must match the preserved PR-1 BFS kernel
//! (`reference::SeedIdRouter`) byte for byte, and the bridge-based
//! `connected_without` must agree with the BFS reference on randomly
//! generated corridors through arbitrary ID-style deletion sequences.

use gsino_circuits::generator::generate;
use gsino_circuits::spec::CircuitSpec;
use gsino_core::router::reference::{SeedAstarRouter, SeedIdRouter};
use gsino_core::router::{
    route_all, AstarRouter, BridgeCache, ConnectivityScratch, Corridor, CorridorScratch,
    ShieldTerm, Weights,
};
use gsino_grid::region::RegionGrid;
use gsino_grid::tech::Technology;
use proptest::prelude::*;

fn routers_setup(seed: u64, scale: f64) -> (gsino_grid::net::Circuit, RegionGrid) {
    let spec = CircuitSpec::ibm01().scaled(scale);
    let circuit = generate(&spec, seed).expect("generator circuits are valid");
    let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).expect("valid grid");
    (circuit, grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The flat-array A* returns byte-identical route sets to the seed
    /// HashMap implementation on seeded random circuits.
    #[test]
    fn flat_astar_matches_seed_router(seed in 0u64..5000) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let weights = Weights::default();
        let flat = AstarRouter::new(&grid, weights, ShieldTerm::None);
        let reference = SeedAstarRouter::new(&grid, weights, ShieldTerm::None);
        let (flat_routes, _) = flat.route(&circuit).expect("flat routes");
        let seed_routes = reference.route(&circuit).expect("reference routes");
        prop_assert_eq!(flat_routes, seed_routes);
    }

    /// Two consecutive `route` calls on one reused scratch are
    /// deterministic and equal to a fresh-scratch run.
    #[test]
    fn reused_scratch_is_deterministic(seed in 0u64..5000) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let mut scratch = router.make_scratch();
        let (first, _) = router.route_with_scratch(&circuit, &mut scratch).expect("routes");
        let (second, _) = router.route_with_scratch(&circuit, &mut scratch).expect("routes");
        let (fresh, _) = router.route(&circuit).expect("routes");
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &fresh);
    }

    /// The incremental-connectivity ID router returns byte-identical route
    /// sets (and identical deletion counters) to the preserved PR-1 BFS
    /// kernel on seeded random circuits.
    #[test]
    fn incremental_id_matches_pr1_reference(seed in 0u64..5000) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let weights = Weights::default();
        let (routes, stats) = route_all(&grid, &circuit, weights, ShieldTerm::None)
            .expect("incremental ID routes");
        let (ref_routes, ref_stats) = SeedIdRouter::new(&grid, weights, ShieldTerm::None)
            .route(&circuit)
            .expect("PR-1 ID routes");
        prop_assert_eq!(routes, ref_routes);
        prop_assert_eq!(stats.connections, ref_stats.connections);
        prop_assert_eq!(stats.deletions, ref_stats.deletions);
        prop_assert_eq!(stats.kept, ref_stats.kept);
        prop_assert_eq!(stats.reinserts, ref_stats.reinserts);
    }

    /// Bridge-based `connected_without` agrees with the BFS reference on
    /// randomly generated corridors through a full ID-style deletion
    /// sequence (query every edge; kill when deletable), including queries
    /// about dead edges and disconnected leftovers.
    #[test]
    fn bridge_connectivity_agrees_with_bfs(
        x1 in 0u32..9, y1 in 0u32..9, x2 in 0u32..9, y2 in 0u32..9,
        halo in 0u32..2, order_seed in 0u64..1_000_000,
    ) {
        let die = gsino_grid::geom::Rect::new(
            gsino_grid::geom::Point::new(0.0, 0.0),
            gsino_grid::geom::Point::new(640.0, 640.0),
        ).expect("die");
        let grid = RegionGrid::from_die(die, &Technology::itrs_100nm(), 64.0).expect("grid");
        let mut corridor = Corridor::new(&grid, grid.idx(x1, y1), grid.idx(x2, y2), halo);
        let mut cache = BridgeCache::new();
        let mut scratch = ConnectivityScratch::new();
        let mut bfs = CorridorScratch::new();
        let mut state = order_seed.wrapping_mul(2) | 1;
        let edges = corridor.num_edges();
        for _round in 0..4 {
            for _ in 0..edges.max(1) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if edges == 0 {
                    break;
                }
                let e = (state >> 33) as usize % edges;
                let fast = cache.connected_without(&corridor, e, &mut scratch);
                let slow = corridor.connected_without(e, &mut bfs);
                prop_assert_eq!(fast, slow, "edge {} diverged", e);
                if fast && corridor.is_alive(e) {
                    corridor.kill(e);
                    cache.note_kill(e);
                }
            }
        }
    }

    /// Speculative parallel Phase I commits in sequential order and is
    /// bit-for-bit identical to the sequential router.
    #[test]
    fn parallel_astar_matches_sequential(seed in 0u64..5000, threads in 2usize..9) {
        let (circuit, grid) = routers_setup(seed, 0.02);
        let router = AstarRouter::new(&grid, Weights::default(), ShieldTerm::None);
        let (seq, _) = router.route(&circuit).expect("sequential routes");
        let (par, _) = router.route_with_threads(&circuit, threads).expect("parallel routes");
        prop_assert_eq!(seq, par);
    }
}

/// One denser non-property check: a mid-size circuit where congestion
/// pressure forces detours, wirelength and trees must still agree across
/// the seed router, the flat router, and the parallel flat router.
#[test]
fn dense_circuit_full_agreement() {
    let (circuit, grid) = routers_setup(2002, 0.06);
    let weights = Weights::default();
    let flat = AstarRouter::new(&grid, weights, ShieldTerm::None);
    let (seq, stats) = flat.route(&circuit).expect("flat");
    let seed_routes = SeedAstarRouter::new(&grid, weights, ShieldTerm::None)
        .route(&circuit)
        .expect("reference");
    assert_eq!(seq, seed_routes);
    assert_eq!(
        seq.total_wirelength(&grid),
        seed_routes.total_wirelength(&grid)
    );
    let (par, par_stats) = flat.route_with_threads(&circuit, 4).expect("parallel");
    assert_eq!(seq, par);
    assert_eq!(stats.connections, par_stats.connections);
}

/// Regression ceilings for the connectivity counters on the exact 500-net
/// ibm01 workload the `phase_runtime` bench times (mirroring its
/// bit-identical route-set assertion). The workload is deterministic, so
/// the counts are exact; the ceilings sit a little above the measured
/// values (1088 recomputes — one per corridor — and 6655 localized
/// repairs) so legitimate tie-break-preserving changes don't trip them,
/// while a change that quietly degrades localized repairs back into
/// per-kill full recomputes fails loudly. `bench_gate` enforces the same
/// ceilings in CI from `BENCH_phase1.json`.
#[test]
fn connectivity_counters_stay_at_measured_baseline() {
    let mut spec = CircuitSpec::ibm01();
    spec.num_nets = 500;
    let circuit = generate(&spec, 2002).expect("generator circuit");
    let grid = RegionGrid::new(&circuit, &Technology::itrs_100nm(), 64.0).expect("grid");
    let (_, stats) =
        route_all(&grid, &circuit, Weights::default(), ShieldTerm::None).expect("ID routes");
    assert_eq!(
        stats.connectivity_recomputes, stats.connections,
        "full bridge recomputes must stay at exactly one per corridor"
    );
    assert!(
        stats.connectivity_repairs <= 7000,
        "localized repairs ({}) exceeded the measured baseline ceiling (7000)",
        stats.connectivity_repairs
    );
    assert!(
        stats.connectivity_o1_hits
            >= 5 * (stats.connectivity_repairs + stats.connectivity_recomputes),
        "O(1) hits ({}) should dominate localized passes ({} repairs, {} recomputes)",
        stats.connectivity_o1_hits,
        stats.connectivity_repairs,
        stats.connectivity_recomputes
    );
}

/// Denser ID check: under congestion pressure the incremental kernel must
/// still match the PR-1 reference byte for byte, while answering most
/// connectivity queries without a recompute.
#[test]
fn dense_circuit_id_agreement() {
    let (circuit, grid) = routers_setup(2002, 0.04);
    let weights = Weights::default();
    let (routes, stats) = route_all(&grid, &circuit, weights, ShieldTerm::None).expect("flat ID");
    let (ref_routes, _) = SeedIdRouter::new(&grid, weights, ShieldTerm::None)
        .route(&circuit)
        .expect("PR-1 ID");
    assert_eq!(routes, ref_routes);
    assert_eq!(
        routes.total_wirelength(&grid),
        ref_routes.total_wirelength(&grid)
    );
    assert!(
        stats.connectivity_recomputes < stats.connectivity_o1_hits,
        "recomputes ({}) should be rarer than O(1) hits ({})",
        stats.connectivity_recomputes,
        stats.connectivity_o1_hits
    );
}
