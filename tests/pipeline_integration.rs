//! Integration tests: the three flows end-to-end on deterministic circuits.

use gsino::core::baseline::{run_id_no, run_isino};
use gsino::core::pipeline::{run_gsino, Approach, GsinoConfig};
use gsino::grid::{Circuit, Net, Point, Rect, SensitivityModel};
use gsino::sino::NssModel;

/// A deterministic mid-size circuit with a congested core and long buses.
fn test_circuit() -> Circuit {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(1536.0, 1024.0)).unwrap();
    let mut nets = Vec::new();
    let mut id = 0u32;
    // Two buses crossing most of the chip.
    for bus in 0..2u32 {
        for i in 0..12u32 {
            let y = 256.0 + bus as f64 * 384.0 + i as f64 * 3.0;
            nets.push(Net::two_pin(id, Point::new(24.0, y), Point::new(1510.0, y)));
            id += 1;
        }
    }
    // Scattered local nets.
    for i in 0..80u32 {
        let x = 32.0 + (i as f64 * 97.0) % 1400.0;
        let y = 32.0 + (i as f64 * 61.0) % 950.0;
        nets.push(Net::new(
            id,
            vec![
                Point::new(x, y),
                Point::new((x + 180.0).min(1530.0), y),
                Point::new(x, (y + 120.0).min(1020.0)),
            ],
        ));
        id += 1;
    }
    Circuit::new("integration", die, nets).unwrap()
}

fn config(rate: f64) -> GsinoConfig {
    GsinoConfig {
        sensitivity: SensitivityModel::new(rate, 77),
        // Pre-fitted coefficients keep the test fast and deterministic.
        nss_model: Some(NssModel::from_coefficients(
            [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
            0.5,
        )),
        threads: 2,
        ..GsinoConfig::default()
    }
}

#[test]
fn gsino_eliminates_all_violations() {
    let circuit = test_circuit();
    let outcome = run_gsino(&circuit, &config(0.5)).unwrap();
    assert_eq!(outcome.approach, Approach::Gsino);
    assert!(
        outcome.violations.is_clean(),
        "GSINO left {} violating nets",
        outcome.violations.violating_nets()
    );
    assert!(outcome.refine_stats.unwrap().clean);
}

#[test]
fn isino_eliminates_all_violations() {
    let circuit = test_circuit();
    let outcome = run_isino(&circuit, &config(0.5)).unwrap();
    assert!(outcome.violations.is_clean());
    assert!(
        outcome.total_shields > 0,
        "a sensitive circuit needs shields"
    );
}

#[test]
fn id_no_violates_on_sensitive_buses() {
    let circuit = test_circuit();
    let outcome = run_id_no(&circuit, &config(0.5)).unwrap();
    assert!(
        outcome.violations.violating_nets() > 0,
        "unshielded 1.5 mm buses at 50% sensitivity must violate"
    );
    assert_eq!(outcome.total_shields, 0);
}

#[test]
fn every_net_gets_a_route_spanning_its_pins() {
    let circuit = test_circuit();
    let outcome = run_gsino(&circuit, &config(0.3)).unwrap();
    let grid = gsino::grid::RegionGrid::new(&circuit, &gsino::grid::Technology::itrs_100nm(), 64.0)
        .unwrap();
    for net in circuit.nets() {
        let route = outcome.routes.get(net.id()).expect("every net routed");
        let root = grid.region_of(net.source());
        for sink in net.sinks() {
            assert!(
                route.path(root, grid.region_of(*sink)).is_some(),
                "net {} cannot reach a sink",
                net.id()
            );
        }
    }
}

#[test]
fn flows_are_deterministic() {
    let circuit = test_circuit();
    let a = run_gsino(&circuit, &config(0.5)).unwrap();
    let b = run_gsino(&circuit, &config(0.5)).unwrap();
    assert_eq!(a.wirelength.total_um, b.wirelength.total_um);
    assert_eq!(a.total_shields, b.total_shields);
    assert_eq!(a.area.area(), b.area.area());
    assert_eq!(a.violations.violating_nets(), b.violations.violating_nets());
}

#[test]
fn shield_counts_ordered_gsino_below_isino() {
    // GSINO reserves and minimizes shielding area during routing and
    // recovers shields in Phase III, so it should never need vastly more
    // shields than iSINO; on sensitive circuits it needs fewer.
    let circuit = test_circuit();
    let cfg = config(0.5);
    let isino = run_isino(&circuit, &cfg).unwrap();
    let gsino = run_gsino(&circuit, &cfg).unwrap();
    assert!(
        (gsino.total_shields as f64) < 1.2 * isino.total_shields as f64,
        "GSINO {} shields vs iSINO {}",
        gsino.total_shields,
        isino.total_shields
    );
}

#[test]
fn zero_sensitivity_needs_no_shields_anywhere() {
    let circuit = test_circuit();
    let cfg = config(0.0);
    let gsino = run_gsino(&circuit, &cfg).unwrap();
    assert_eq!(gsino.total_shields, 0);
    assert!(gsino.violations.is_clean());
    let isino = run_isino(&circuit, &cfg).unwrap();
    assert_eq!(isino.total_shields, 0);
}
