//! Concurrency suite for the routing service, driven entirely through the
//! public facade: parallel clients against one session commit
//! bit-identically to a from-scratch flow, canceled/rejected batches
//! leave the pre-batch bits, backpressure is typed and retryable, and
//! shutdown under load drains every session to a committed state with no
//! transaction left open.

use gsino::core::pipeline::{run_flow_with_artifacts, Approach};
use gsino::grid::{Circuit, Net, Point, Rect};
use gsino::sino::nss::NssModel;
use gsino::{
    CoreError, EcoEdit, EcoSession, ErrorKind, GsinoConfig, RoutingService, ServiceConfig,
};
use std::time::Duration;

fn small_circuit(name: &str, n: u32) -> Circuit {
    let die = Rect::new(Point::new(0.0, 0.0), Point::new(640.0, 640.0)).unwrap();
    let nets: Vec<Net> = (0..n)
        .map(|i| {
            let x = 16.0 + (i as f64 * 37.0) % 600.0;
            let y = 16.0 + (i as f64 * 53.0) % 600.0;
            Net::two_pin(i, Point::new(x, y), Point::new(620.0 - x, 620.0 - y))
        })
        .collect();
    Circuit::new(name, die, nets).unwrap()
}

fn fast_config() -> GsinoConfig {
    GsinoConfig::builder()
        .nss_model(NssModel::from_coefficients(
            [0.9, -0.5, 0.4, -0.2, 0.05, -0.3],
            0.5,
        ))
        .threads(1)
        .build()
        .unwrap()
}

/// Base service config honouring the CI pool-size matrix: the
/// `GSINO_POOL_THREADS` env var pins the worker pool (0/unset = auto).
/// Every suite in this file must pass unchanged at any pool size.
fn test_config() -> ServiceConfig {
    let pool_threads = std::env::var("GSINO_POOL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    ServiceConfig {
        pool_threads,
        ..ServiceConfig::default()
    }
}

/// The retired session's committed state must equal a from-scratch flow
/// on its final circuit and configuration — the service-level version of
/// the session's bit-identity oracle.
fn assert_matches_scratch(session: &EcoSession) {
    let (outcome, internals) =
        run_flow_with_artifacts(session.circuit(), session.config(), Approach::Gsino).unwrap();
    assert_eq!(session.routes(), &outcome.routes, "routes diverged");
    assert_eq!(session.budgets(), &internals.budgets, "budgets diverged");
    assert_eq!(session.sino(), &internals.sino, "sino diverged");
}

#[test]
fn parallel_clients_commit_bit_identically() {
    let service = RoutingService::new(test_config());
    let handle = service
        .open("par", small_circuit("par", 14), fast_config())
        .unwrap();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let h = handle.clone();
            std::thread::spawn(move || {
                h.edit(vec![EcoEdit::TightenVth {
                    net: i,
                    sink: 0,
                    vth: 0.10 + 0.005 * f64::from(i),
                }])
            })
        })
        .collect();
    for c in clients {
        let receipt = c.join().unwrap().unwrap();
        assert_eq!(receipt.edits, 1);
        assert_eq!(receipt.class, gsino::core::session::EditClass::BudgetOnly);
    }
    let session = service.close("par").unwrap();
    assert_eq!(session.stats().edits_applied, 4);
    assert!(session.stats().commits >= 1 && session.stats().commits <= 4);
    assert!(!session.in_transaction());
    assert_eq!(session.config().vth_overrides.len(), 4);
    assert_matches_scratch(&session);
}

#[test]
fn canceled_and_rejected_requests_leave_pre_batch_bits() {
    let service = RoutingService::new(test_config());
    let handle = service
        .open("atomic", small_circuit("atomic", 12), fast_config())
        .unwrap();
    // One committed baseline edit.
    handle
        .edit(vec![EcoEdit::TightenVth {
            net: 1,
            sink: 0,
            vth: 0.12,
        }])
        .unwrap();

    // An already-expired deadline: canceled in the queue, session untouched.
    let expired = handle.edit_within(
        vec![EcoEdit::TightenVth {
            net: 2,
            sink: 0,
            vth: 0.11,
        }],
        Duration::ZERO,
    );
    match expired {
        Err(err) => {
            assert_eq!(err.kind(), ErrorKind::Canceled);
            assert!(err.is_retryable());
        }
        Ok(r) => panic!("expired deadline committed: {r:?}"),
    }

    // A stale-id edit: rejected at apply time, transaction rolled back.
    let stale = handle.edit(vec![EcoEdit::TightenVth {
        net: 999,
        sink: 0,
        vth: 0.11,
    }]);
    assert!(matches!(stale, Err(CoreError::UnknownId { .. })));

    // A whole request is one transaction: a good edit sharing a request
    // with a stale one must not commit.
    let mixed = handle.edit(vec![
        EcoEdit::TightenVth {
            net: 3,
            sink: 0,
            vth: 0.11,
        },
        EcoEdit::TightenVth {
            net: 999,
            sink: 0,
            vth: 0.11,
        },
    ]);
    assert!(matches!(mixed, Err(CoreError::UnknownId { .. })));

    let session = service.close("atomic").unwrap();
    // Exactly the baseline edit is in: one commit, one override.
    assert_eq!(session.stats().commits, 1);
    assert_eq!(session.config().vth_overrides.len(), 1);
    assert!(!session.in_transaction());
    assert_matches_scratch(&session);
}

#[test]
fn racing_deadline_is_atomic_either_way() {
    let service = RoutingService::new(test_config());
    let handle = service
        .open("race", small_circuit("race", 12), fast_config())
        .unwrap();
    // Wait out the asynchronous build first, so the deadline below races
    // the *replay*, not the queue behind the opening flow.
    handle.query().unwrap();
    // A deadline tight enough to plausibly fire mid-replay (the debug
    // oracle audits 100% of regions, so commits are slow here). Whichever
    // way the race goes, the retired state must be exactly a from-scratch
    // flow on whatever configuration actually committed.
    let raced = handle.edit_within(
        vec![EcoEdit::TightenVth {
            net: 4,
            sink: 0,
            vth: 0.11,
        }],
        Duration::from_millis(2),
    );
    let session = service.close("race").unwrap();
    match raced {
        Ok(_) => assert_eq!(session.config().vth_overrides.len(), 1),
        Err(err) => {
            assert_eq!(err.kind(), ErrorKind::Canceled);
            assert_eq!(session.config().vth_overrides.len(), 0);
        }
    }
    assert!(!session.in_transaction());
    assert_matches_scratch(&session);
}

#[test]
fn overloaded_clients_retry_to_success() {
    // A deliberately tiny mailbox under many clients: rejections must be
    // typed, retryable, and actually succeed on retry.
    let service = RoutingService::new(ServiceConfig {
        mailbox_capacity: 2,
        ..test_config()
    });
    let handle = service
        .open("load", small_circuit("load", 12), fast_config())
        .unwrap();
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let h = handle.clone();
            std::thread::spawn(move || {
                let mut rejections = 0u32;
                loop {
                    match h.edit(vec![EcoEdit::TightenVth {
                        net: i,
                        sink: 0,
                        vth: 0.10 + 0.005 * f64::from(i),
                    }]) {
                        Ok(receipt) => return (rejections, receipt),
                        Err(e) if e.kind() == ErrorKind::Overloaded => {
                            assert!(e.is_retryable());
                            rejections += 1;
                            std::thread::yield_now();
                        }
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        let (_, receipt) = c.join().unwrap();
        assert_eq!(receipt.edits, 1);
    }
    let session = service.close("load").unwrap();
    assert_eq!(session.stats().edits_applied, 6);
    assert_matches_scratch(&session);
}

#[test]
fn shutdown_under_load_drains_every_session() {
    let service = RoutingService::new(test_config());
    for name in ["a", "b"] {
        service
            .open(name, small_circuit(name, 12), fast_config())
            .unwrap();
    }
    let mut clients = Vec::new();
    for name in ["a", "b"] {
        for i in 0..3u32 {
            let h = service.handle(name).unwrap();
            clients.push(std::thread::spawn(move || {
                h.edit(vec![EcoEdit::TightenVth {
                    net: i,
                    sink: 0,
                    vth: 0.10 + 0.005 * f64::from(i),
                }])
            }));
        }
    }
    // Close requests enqueue *behind* whatever the clients got in, so the
    // retired sessions reflect a drained queue, never a torn transaction.
    let retired = service.shutdown();
    assert_eq!(retired.len(), 2);
    for (name, outcome) in retired {
        let session = outcome.unwrap();
        assert!(
            !session.in_transaction(),
            "session `{name}` mid-transaction"
        );
        assert_matches_scratch(&session);
    }
    // Every client either committed before the drain or saw the typed
    // closed-session rejection — never a hang, never a torn state.
    for c in clients {
        match c.join().unwrap() {
            Ok(receipt) => assert_eq!(receipt.edits, 1),
            Err(e) => assert!(matches!(
                e.kind(),
                ErrorKind::SessionClosed | ErrorKind::Overloaded
            )),
        }
    }
}

#[test]
fn error_taxonomy_is_stable_and_retry_classified() {
    let service = RoutingService::new(ServiceConfig {
        max_sessions: 1,
        ..test_config()
    });
    let _h = service
        .open("only", small_circuit("only", 8), fast_config())
        .unwrap();

    let busy = service
        .open("only", small_circuit("x", 8), fast_config())
        .err()
        .unwrap();
    assert_eq!(busy.kind(), ErrorKind::SessionBusy);
    assert!(busy.is_retryable());

    let full = service
        .open("other", small_circuit("y", 8), fast_config())
        .err()
        .unwrap();
    assert_eq!(full.kind(), ErrorKind::Overloaded);
    assert!(full.is_retryable());

    let missing = service.handle("ghost").err().unwrap();
    assert_eq!(missing.kind(), ErrorKind::SessionClosed);
    assert!(!missing.is_retryable());
}
